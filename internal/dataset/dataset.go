// Package dataset generates synthetic click-through-rate training data with
// the statistical profile of the paper's production workloads.
//
// The paper trains on Baidu's user click history logs, which are not
// available. The generator substitutes them with a stream that preserves the
// properties the system's behaviour depends on:
//
//   - each example has a fixed number of non-zero sparse features
//     (Table 3's "#Non-zeros" column),
//   - feature popularity is heavily skewed (a Zipf distribution), which is
//     what makes the MEM-PS cache effective (Fig 4c) and gives batches the
//     working-set sizes the hierarchy is designed around,
//   - labels come from a planted teacher model, so trained models have a
//     measurable AUC that improves with training (Fig 3b, Tables 1–2).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"hps/internal/keys"
)

// Example is a single training example: a multi-hot sparse feature vector and
// a binary click label.
type Example struct {
	// Features are the non-zero sparse feature keys.
	Features []keys.Key
	// Label is 1 for a click and 0 otherwise.
	Label float32
}

// Batch is a set of examples streamed together (the paper uses batches of
// roughly 4x10^6 examples; scaled configurations use smaller batches).
type Batch struct {
	// Index is the sequence number of the batch within its stream.
	Index int
	// Examples are the batch's training examples.
	Examples []Example
}

// Len returns the number of examples in the batch.
func (b *Batch) Len() int { return len(b.Examples) }

// ByteSize estimates the serialized size of the batch as streamed from HDFS:
// 8 bytes per feature key plus 4 bytes of label per example.
func (b *Batch) ByteSize() int64 {
	var n int64
	for i := range b.Examples {
		n += int64(len(b.Examples[i].Features))*8 + 4
	}
	return n
}

// Keys returns the deduplicated, sorted union of feature keys referenced by
// the batch — the "working parameters" of Algorithm 1.
func (b *Batch) Keys() []keys.Key {
	var out []keys.Key
	for i := range b.Examples {
		out = append(out, b.Examples[i].Features...)
	}
	return keys.Dedup(out)
}

// Shard splits the batch into n mini-batches of near-equal size, preserving
// example order (Algorithm 1 line 5). Every returned mini-batch is non-nil;
// trailing mini-batches may be empty when len(Examples) < n.
func (b *Batch) Shard(n int) []*Batch {
	if n < 1 {
		n = 1
	}
	out := make([]*Batch, n)
	per := (len(b.Examples) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(b.Examples) {
			lo = len(b.Examples)
		}
		if hi > len(b.Examples) {
			hi = len(b.Examples)
		}
		out[i] = &Batch{Index: b.Index, Examples: b.Examples[lo:hi]}
	}
	return out
}

// Config describes a synthetic data distribution.
type Config struct {
	// NumFeatures is the size of the sparse feature universe.
	NumFeatures int64
	// NonZerosPerExample is the number of features sampled per example.
	NonZerosPerExample int
	// ZipfS is the Zipf skew exponent (> 1); 1.2 when zero.
	ZipfS float64
	// TeacherSeed seeds the planted ground-truth model that labels examples.
	TeacherSeed int64
	// TeacherScale controls the signal strength of the teacher (default 2.0);
	// higher values make the dataset more separable (higher attainable AUC).
	TeacherScale float64
	// NoiseStd adds Gaussian noise to the teacher logit (default 0.5).
	NoiseStd float64
}

func (c Config) withDefaults() Config {
	if c.NumFeatures <= 0 {
		c.NumFeatures = 1 << 20
	}
	if c.NonZerosPerExample <= 0 {
		c.NonZerosPerExample = 100
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.TeacherScale <= 0 {
		c.TeacherScale = 2.0
	}
	if c.NoiseStd < 0 {
		c.NoiseStd = 0
	} else if c.NoiseStd == 0 {
		c.NoiseStd = 0.5
	}
	return c
}

// Generator produces a deterministic stream of batches for one node.
// A Generator is not safe for concurrent use; create one per node/stream.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	zipf  *rand.Zipf
	index int
}

// NewGenerator returns a generator seeded with seed. Two generators with the
// same configuration and seed produce identical streams.
func NewGenerator(cfg Config, seed int64) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.NumFeatures-1))
	return &Generator{cfg: cfg, rng: rng, zipf: zipf}
}

// Config returns the generator's (defaulted) configuration.
func (g *Generator) Config() Config { return g.cfg }

// teacherWeight returns the planted ground-truth weight for a feature. It is
// a deterministic pseudo-random value in roughly N(0, 1), derived from the
// key so the 10^11-parameter "true model" never has to be materialized.
func (g *Generator) teacherWeight(k keys.Key) float64 {
	h := keys.Mix64(uint64(k) ^ uint64(g.cfg.TeacherSeed)*0x9e3779b97f4a7c15)
	// Map two 32-bit halves to a normal-ish value via a sum of uniforms.
	u1 := float64(uint32(h)) / float64(1<<32)
	u2 := float64(uint32(h>>32)) / float64(1<<32)
	return (u1 + u2 - 1.0) * 3.46 // variance ≈ 1
}

// TeacherLogit returns the planted model's logit for a set of features. It is
// exported so experiments can compute the Bayes-optimal AUC of a dataset.
func (g *Generator) TeacherLogit(features []keys.Key) float64 {
	if len(features) == 0 {
		return 0
	}
	var sum float64
	for _, k := range features {
		sum += g.teacherWeight(k)
	}
	return g.cfg.TeacherScale * sum / math.Sqrt(float64(len(features)))
}

// NextExample generates one example.
func (g *Generator) NextExample() Example {
	nnz := g.cfg.NonZerosPerExample
	feats := make([]keys.Key, 0, nnz)
	seen := make(map[keys.Key]struct{}, nnz)
	for len(feats) < nnz {
		raw := g.zipf.Uint64()
		// Scatter the zipf rank across the key space so that modulo sharding
		// stays balanced while popularity remains skewed.
		k := keys.Key(keys.Mix64(raw) % uint64(g.cfg.NumFeatures))
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		feats = append(feats, k)
	}
	logit := g.TeacherLogit(feats)
	if g.cfg.NoiseStd > 0 {
		logit += g.rng.NormFloat64() * g.cfg.NoiseStd
	}
	p := 1.0 / (1.0 + math.Exp(-logit))
	var label float32
	if g.rng.Float64() < p {
		label = 1
	}
	return Example{Features: feats, Label: label}
}

// NextBatch generates a batch of n examples.
func (g *Generator) NextBatch(n int) *Batch {
	if n < 0 {
		n = 0
	}
	b := &Batch{Index: g.index, Examples: make([]Example, n)}
	for i := 0; i < n; i++ {
		b.Examples[i] = g.NextExample()
	}
	g.index++
	return b
}

// ForModel builds a Config matching a model specification: the feature
// universe equals the model's sparse parameter count and the per-example
// non-zero count matches Table 3.
func ForModel(sparseParams int64, nonZeros int) Config {
	return Config{
		NumFeatures:        sparseParams,
		NonZerosPerExample: nonZeros,
	}
}

// Validate returns an error when the configuration cannot generate the
// requested examples (more distinct non-zeros than features exist).
func (c Config) Validate() error {
	cc := c.withDefaults()
	if int64(cc.NonZerosPerExample) > cc.NumFeatures {
		return fmt.Errorf("dataset: %d non-zeros per example exceeds universe of %d features",
			cc.NonZerosPerExample, cc.NumFeatures)
	}
	return nil
}
