package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"hps/internal/keys"
	"hps/internal/metrics"
)

func testConfig() Config {
	return Config{NumFeatures: 10000, NonZerosPerExample: 20}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(testConfig(), 42)
	g2 := NewGenerator(testConfig(), 42)
	b1 := g1.NextBatch(50)
	b2 := g2.NextBatch(50)
	if b1.Len() != b2.Len() {
		t.Fatal("lengths differ")
	}
	for i := range b1.Examples {
		if b1.Examples[i].Label != b2.Examples[i].Label {
			t.Fatal("labels differ for identical seeds")
		}
		if len(b1.Examples[i].Features) != len(b2.Examples[i].Features) {
			t.Fatal("feature counts differ")
		}
		for j := range b1.Examples[i].Features {
			if b1.Examples[i].Features[j] != b2.Examples[i].Features[j] {
				t.Fatal("features differ for identical seeds")
			}
		}
	}
}

func TestGeneratorDifferentSeedsDiffer(t *testing.T) {
	g1 := NewGenerator(testConfig(), 1)
	g2 := NewGenerator(testConfig(), 2)
	b1 := g1.NextBatch(10)
	b2 := g2.NextBatch(10)
	same := true
	for i := range b1.Examples {
		for j := range b1.Examples[i].Features {
			if b1.Examples[i].Features[j] != b2.Examples[i].Features[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds should produce different streams")
	}
}

func TestExampleShape(t *testing.T) {
	g := NewGenerator(testConfig(), 7)
	for i := 0; i < 100; i++ {
		ex := g.NextExample()
		if len(ex.Features) != 20 {
			t.Fatalf("example has %d features, want 20", len(ex.Features))
		}
		seen := make(map[keys.Key]bool)
		for _, k := range ex.Features {
			if uint64(k) >= 10000 {
				t.Fatalf("feature %d outside universe", k)
			}
			if seen[k] {
				t.Fatal("duplicate feature within example")
			}
			seen[k] = true
		}
		if ex.Label != 0 && ex.Label != 1 {
			t.Fatalf("label = %v", ex.Label)
		}
	}
}

func TestLabelsBothClassesPresent(t *testing.T) {
	g := NewGenerator(testConfig(), 11)
	b := g.NextBatch(2000)
	pos := 0
	for _, ex := range b.Examples {
		if ex.Label == 1 {
			pos++
		}
	}
	if pos == 0 || pos == b.Len() {
		t.Fatalf("degenerate label distribution: %d/%d positive", pos, b.Len())
	}
}

func TestTeacherIsLearnableSignal(t *testing.T) {
	// The teacher's own logit must rank the labels well above chance —
	// otherwise no trained model could show AUC gains (Tables 1-2, Fig 3b).
	g := NewGenerator(testConfig(), 13)
	b := g.NextBatch(4000)
	scores := make([]float64, b.Len())
	labels := make([]float64, b.Len())
	for i, ex := range b.Examples {
		scores[i] = g.TeacherLogit(ex.Features)
		labels[i] = float64(ex.Label)
	}
	auc := metrics.AUC(scores, labels)
	if auc < 0.75 {
		t.Fatalf("teacher AUC = %v, want > 0.75 (separable dataset)", auc)
	}
}

func TestFeaturePopularitySkewed(t *testing.T) {
	// The generator must produce a skewed popularity distribution: the top 1%
	// of observed features should cover a disproportionate share of
	// occurrences. This is what gives the MEM-PS cache its ~46% hit rate.
	g := NewGenerator(Config{NumFeatures: 100000, NonZerosPerExample: 50}, 3)
	counts := make(map[keys.Key]int)
	total := 0
	for i := 0; i < 2000; i++ {
		ex := g.NextExample()
		for _, k := range ex.Features {
			counts[k]++
			total++
		}
	}
	// Count occurrences covered by features seen 10+ times.
	hot := 0
	hotFeatures := 0
	for _, c := range counts {
		if c >= 10 {
			hot += c
			hotFeatures++
		}
	}
	if hotFeatures == 0 {
		t.Fatal("no hot features at all — distribution not skewed")
	}
	frac := float64(hot) / float64(total)
	hotFrac := float64(hotFeatures) / float64(len(counts))
	if frac < 2*hotFrac {
		t.Fatalf("popularity not skewed: %.1f%% of occurrences from %.1f%% of features",
			frac*100, hotFrac*100)
	}
}

func TestBatchKeysDedupSorted(t *testing.T) {
	g := NewGenerator(testConfig(), 5)
	b := g.NextBatch(100)
	ks := b.Keys()
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatal("Keys must be sorted and deduplicated")
		}
	}
	if len(ks) == 0 || len(ks) > 100*20 {
		t.Fatalf("unexpected key count %d", len(ks))
	}
}

func TestBatchByteSize(t *testing.T) {
	b := &Batch{Examples: []Example{
		{Features: []keys.Key{1, 2, 3}, Label: 1},
		{Features: []keys.Key{4}, Label: 0},
	}}
	// 3*8+4 + 1*8+4 = 40
	if got := b.ByteSize(); got != 40 {
		t.Fatalf("ByteSize = %d, want 40", got)
	}
	var empty Batch
	if empty.ByteSize() != 0 {
		t.Fatal("empty batch should have zero size")
	}
}

func TestBatchShard(t *testing.T) {
	g := NewGenerator(testConfig(), 9)
	b := g.NextBatch(10)
	shards := b.Shard(3)
	if len(shards) != 3 {
		t.Fatalf("want 3 shards, got %d", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
		if s.Index != b.Index {
			t.Fatal("shard must keep batch index")
		}
	}
	if total != 10 {
		t.Fatalf("shards lost examples: %d", total)
	}
	// More shards than examples: empty shards allowed, none nil.
	many := b.Shard(20)
	if len(many) != 20 {
		t.Fatal("want 20 shards")
	}
	for _, s := range many {
		if s == nil {
			t.Fatal("no shard may be nil")
		}
	}
	// n < 1 clamps to 1.
	one := b.Shard(0)
	if len(one) != 1 || one[0].Len() != 10 {
		t.Fatal("Shard(0) should produce a single full shard")
	}
}

func TestBatchShardProperty(t *testing.T) {
	g := NewGenerator(testConfig(), 17)
	f := func(nRaw uint8, sizeRaw uint8) bool {
		n := int(nRaw%16) + 1
		size := int(sizeRaw % 64)
		b := g.NextBatch(size)
		shards := b.Shard(n)
		total := 0
		for _, s := range shards {
			total += s.Len()
		}
		return len(shards) == n && total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchIndexIncrements(t *testing.T) {
	g := NewGenerator(testConfig(), 21)
	for i := 0; i < 5; i++ {
		b := g.NextBatch(1)
		if b.Index != i {
			t.Fatalf("batch index = %d, want %d", b.Index, i)
		}
	}
}

func TestConfigDefaultsAndValidate(t *testing.T) {
	var c Config
	d := c.withDefaults()
	if d.NumFeatures <= 0 || d.NonZerosPerExample <= 0 || d.ZipfS <= 1 || d.TeacherScale <= 0 {
		t.Fatalf("defaults not applied: %+v", d)
	}
	if err := (Config{NumFeatures: 5, NonZerosPerExample: 10}).Validate(); err == nil {
		t.Fatal("expected validation error when non-zeros exceed universe")
	}
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestForModel(t *testing.T) {
	c := ForModel(123456, 500)
	if c.NumFeatures != 123456 || c.NonZerosPerExample != 500 {
		t.Fatalf("ForModel = %+v", c)
	}
}

func TestTeacherLogitEmpty(t *testing.T) {
	g := NewGenerator(testConfig(), 1)
	if g.TeacherLogit(nil) != 0 {
		t.Fatal("empty features should give zero logit")
	}
	if math.IsNaN(g.TeacherLogit([]keys.Key{1, 2, 3})) {
		t.Fatal("logit must not be NaN")
	}
}

func TestNextBatchNegative(t *testing.T) {
	g := NewGenerator(testConfig(), 1)
	b := g.NextBatch(-5)
	if b.Len() != 0 {
		t.Fatal("negative batch size should produce empty batch")
	}
}
