package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/hw"
	"hps/internal/loadgen"
	"hps/internal/trainer"
)

// shardProc is one spawned `hps serve` child process. done is closed after
// the child has exited and been reaped; the spawn goroutine owns Wait.
type shardProc struct {
	cmd  *exec.Cmd
	addr string
	done chan struct{}
}

// ShardLossError is the typed, permanent form of a shard failure: the
// supervisor either exhausted the restart budget (Restarts attempts within
// the window, all dead) or — in a replicated ring — treated the death as a
// promotion trigger and removed the shard from the ring for good.
type ShardLossError struct {
	Shard    int
	Restarts int
	Promoted bool
}

func (e *ShardLossError) Error() string {
	if e.Promoted {
		return fmt.Sprintf("shard %d lost permanently; its backups were promoted (ring leave)", e.Shard)
	}
	return fmt.Sprintf("shard %d lost permanently after %d restarts (budget exhausted)", e.Shard, e.Restarts)
}

// restartBudget caps how many times a shard slot may be restarted within a
// sliding window, spacing consecutive restarts with exponential backoff.
// Beyond the cap the shard is declared permanently lost — a crash loop (bad
// disk, poisoned state) must surface as a typed failure, not burn the run
// restarting forever.
type restartBudget struct {
	max    int
	window time.Duration
	base   time.Duration

	mu   sync.Mutex
	hist map[int][]time.Time
}

func newRestartBudget(max int, window, base time.Duration) *restartBudget {
	return &restartBudget{max: max, window: window, base: base, hist: map[int][]time.Time{}}
}

// next records a restart attempt for shard i. It returns the backoff to sleep
// before respawning (zero for the first restart in the window — a lone crash
// recovers at full speed) and ok=false once the budget is exhausted, with the
// number of restarts already burned.
func (b *restartBudget) next(i int) (delay time.Duration, restarts int, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	keep := b.hist[i][:0]
	for _, t := range b.hist[i] {
		if now.Sub(t) < b.window {
			keep = append(keep, t)
		}
	}
	if len(keep) >= b.max {
		b.hist[i] = keep
		return 0, len(keep), false
	}
	if len(keep) > 0 {
		delay = b.base << (len(keep) - 1)
		if cap := 5 * time.Second; delay > cap {
			delay = cap
		}
	}
	b.hist[i] = append(keep, now)
	return delay, len(b.hist[i]), true
}

// shardSet owns and supervises the spawned shard processes. Each shard has a
// durable state directory under root. What happens when a shard dies depends
// on the deployment:
//
//   - replicated ring (R>1): the backups already hold every acked delta, so
//     the shard is permanently retired and its key ranges promoted (the
//     driver broadcasts a Leave ring). Restoring stale disk state instead
//     would be unsound — transfers skip present keys, so restored rows would
//     shadow the backups' fresher ones.
//   - unreplicated: the shard is restarted over its directory with -restore
//     (SSD-PS recovery plus the replayed push-dedup log), under the restart
//     budget; exhausting the budget is a permanent, typed loss.
type shardSet struct {
	exe    string
	shards int
	fs     *trainFlags
	root   string

	// ring-mode state; ms == nil means legacy modulo placement.
	ms       *cluster.Membership
	replicas int
	vnodes   int
	budget   *restartBudget

	// onPromote broadcasts the Leave ring after a replicated shard's death;
	// onRejoin re-broadcasts the current ring (with addresses) to a restarted
	// shard; onExhausted aborts the run when an unreplicated shard is lost.
	onPromote   func(shard int)
	onRejoin    func(shard int)
	onExhausted func(shard int)

	mu       sync.Mutex
	procs    map[int]*shardProc
	removed  map[int]bool
	losses   []*ShardLossError
	nextID   int
	stopping bool
	onMove   []func(shard int, addr string)
	wg       sync.WaitGroup
}

// dir returns shard i's durable state directory.
func (s *shardSet) dir(i int) string {
	return filepath.Join(s.root, fmt.Sprintf("shard-%d", i))
}

// dirs returns the initial shards' state directories (the manifest's Shards
// map). Shards joined mid-run hold only re-replicated state and are not part
// of the checkpoint manifest.
func (s *shardSet) dirs() map[int]string {
	out := make(map[int]string, s.shards)
	for i := 0; i < s.shards; i++ {
		out[i] = s.dir(i)
	}
	return out
}

// addrs returns the current live shard addresses.
func (s *shardSet) addrs() map[int]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]string, len(s.procs))
	for i, p := range s.procs {
		out[i] = p.addr
	}
	return out
}

// notifyMove registers a callback for shard address changes (restarts and
// joins) so every transport can be repointed.
func (s *shardSet) notifyMove(f func(shard int, addr string)) {
	s.mu.Lock()
	s.onMove = append(s.onMove, f)
	s.mu.Unlock()
}

// noteLoss records a permanent shard loss for the end-of-run report.
func (s *shardSet) noteLoss(e *ShardLossError) {
	s.mu.Lock()
	s.losses = append(s.losses, e)
	s.mu.Unlock()
}

// lossList snapshots the permanent losses so far.
func (s *shardSet) lossList() []*ShardLossError {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*ShardLossError{}, s.losses...)
}

// fatalLoss returns the first non-promoted loss — a shard whose keys nobody
// else holds — or nil. Promotions are survivable; this is not.
func (s *shardSet) fatalLoss() *ShardLossError {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.losses {
		if !e.Promoted {
			return e
		}
	}
	return nil
}

// ringArgsFor builds the serve-side ring flags for the given member list.
func (s *shardSet) ringArgsFor(members []int) []string {
	if s.ms == nil {
		return nil
	}
	ids := make([]string, len(members))
	for i, m := range members {
		ids[i] = strconv.Itoa(m)
	}
	return []string{
		"-members", strings.Join(ids, ","),
		"-replicas", strconv.Itoa(s.replicas),
		"-vnodes", strconv.Itoa(s.vnodes),
	}
}

// ringArgs builds the serve-side ring flags for the current ring.
func (s *shardSet) ringArgs() []string {
	if s.ms == nil {
		return nil
	}
	return s.ringArgsFor(s.ms.Ring().Members())
}

// shardsArg sizes the -shards flag for a child: joiners get ids beyond the
// initial count, and the child's Topology.Nodes must cover its own id.
func (s *shardSet) shardsArg(id int) int {
	if id+1 > s.shards {
		return id + 1
	}
	return s.shards
}

// start spawns every initial shard and begins supervising them.
func (s *shardSet) start(restore bool) error {
	s.procs = make(map[int]*shardProc, s.shards)
	s.removed = map[int]bool{}
	s.nextID = s.shards
	for i := 0; i < s.shards; i++ {
		p, err := spawnShard(s.exe, i, s.shards, s.fs, s.dir(i), restore, s.ringArgs())
		if err != nil {
			return err
		}
		s.procs[i] = p
		fmt.Printf("shard %d up: pid %d at %s\n", i, p.cmd.Process.Pid, p.addr)
	}
	for i := 0; i < s.shards; i++ {
		s.wg.Add(1)
		go s.supervise(i)
	}
	return nil
}

// supervise watches one shard slot until the set stops or the shard is lost
// for good. See the shardSet doc comment for the two failure policies.
func (s *shardSet) supervise(i int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		p := s.procs[i]
		s.mu.Unlock()
		if p == nil {
			return
		}
		<-p.done
		s.mu.Lock()
		stop := s.stopping || s.removed[i]
		s.mu.Unlock()
		if stop {
			return
		}

		if s.ms != nil && s.replicas > 1 && len(s.ms.Ring().Members()) > 1 {
			// Replicated: every key the dead primary acked also lives on a
			// backup, so the fastest correct recovery is promotion. Training
			// continues against the backups without touching the dead shard's
			// disk.
			fmt.Printf("shard %d died (%v); promoting its backups instead of restoring\n", i, p.cmd.ProcessState)
			s.mu.Lock()
			delete(s.procs, i)
			s.mu.Unlock()
			s.noteLoss(&ShardLossError{Shard: i, Promoted: true})
			if s.onPromote != nil {
				s.onPromote(i)
			}
			return
		}

		delay, restarts, ok := s.budget.next(i)
		if !ok {
			e := &ShardLossError{Shard: i, Restarts: restarts}
			fmt.Fprintf(os.Stderr, "driver: %v\n", e)
			s.noteLoss(e)
			if s.onExhausted != nil {
				s.onExhausted(i)
			}
			return
		}
		if delay > 0 {
			fmt.Printf("shard %d died (%v); restart %d/%d after %v backoff\n",
				i, p.cmd.ProcessState, restarts, s.budget.max, delay)
			time.Sleep(delay)
		} else {
			fmt.Printf("shard %d died (%v); restarting with -restore\n", i, p.cmd.ProcessState)
		}
		np, err := spawnShard(s.exe, i, s.shardsArg(i), s.fs, s.dir(i), true, s.ringArgs())
		if err != nil {
			fmt.Fprintf(os.Stderr, "driver: restart shard %d: %v\n", i, err)
			s.noteLoss(&ShardLossError{Shard: i, Restarts: restarts})
			if s.onExhausted != nil {
				s.onExhausted(i)
			}
			return
		}
		s.mu.Lock()
		s.procs[i] = np
		stop = s.stopping
		moves := append([]func(int, string){}, s.onMove...)
		s.mu.Unlock()
		if stop {
			// Shutdown won the race: the restarted shard is not needed.
			np.cmd.Process.Signal(os.Interrupt)
			<-np.done
			return
		}
		for _, f := range moves {
			f(i, np.addr)
		}
		if s.onRejoin != nil {
			// Re-teach the restarted shard the current ring and address book
			// (it boots at membership epoch 0 from its flags).
			s.onRejoin(i)
		}
		fmt.Printf("shard %d restarted: pid %d at %s\n", i, np.cmd.Process.Pid, np.addr)
	}
}

// add spawns one fresh shard (empty state directory), teaches every transport
// its address, then applies the Join ring — in that order, so by the time any
// peer routes to the joiner it is reachable. The survivors stream the
// joiner's new key ranges to it in the background (rate-limited transfers).
func (s *shardSet) add(apply func(next *cluster.Ring)) error {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return nil
	}
	id := s.nextID
	s.nextID++
	s.mu.Unlock()

	p, err := spawnShard(s.exe, id, s.shardsArg(id), s.fs, s.dir(id), false,
		s.ringArgsFor(append(slices.Clone(s.ms.Ring().Members()), id)))
	if err != nil {
		return fmt.Errorf("spawn joining shard %d: %w", id, err)
	}
	s.mu.Lock()
	s.procs[id] = p
	moves := append([]func(int, string){}, s.onMove...)
	s.mu.Unlock()
	for _, f := range moves {
		f(id, p.addr)
	}
	apply(s.ms.Ring().Join(id))
	s.wg.Add(1)
	go s.supervise(id)
	fmt.Printf("shard %d joined: pid %d at %s (ring epoch %d)\n",
		id, p.cmd.Process.Pid, p.addr, s.ms.Epoch())
	return nil
}

// remove retires the highest-id ring member: it broadcasts the Leave ring
// first — the survivors re-replicate among themselves and the leaver hands
// off every row it holds — then, after a grace period for the handoff to
// drain, shuts the process down.
func (s *shardSet) remove(apply func(next *cluster.Ring)) error {
	ring := s.ms.Ring()
	members := ring.Members()
	if len(members) < 2 {
		return fmt.Errorf("cannot remove a shard: %d ring member(s) left", len(members))
	}
	id := members[0]
	for _, m := range members {
		if m > id {
			id = m
		}
	}
	fmt.Printf("shard %d leaving the ring (epoch %d -> %d)\n", id, ring.Epoch(), ring.Epoch()+1)
	apply(ring.Leave(id))

	// Grace: the leaver's handoff transfers are rate-limited background work;
	// killing the process under them would lose whatever had not streamed out
	// yet (with R=1 nobody else holds those rows).
	time.Sleep(3 * time.Second)

	s.mu.Lock()
	s.removed[id] = true
	p := s.procs[id]
	delete(s.procs, id)
	s.mu.Unlock()
	if p != nil {
		p.cmd.Process.Signal(syscall.SIGTERM)
		select {
		case <-p.done:
		case <-time.After(10 * time.Second):
			p.cmd.Process.Kill()
			<-p.done
		}
	}
	fmt.Printf("shard %d left and shut down\n", id)
	return nil
}

// stop asks every child to shut down cleanly (flush to SSD-PS, sync the seq
// log), kills stragglers, and waits for the supervisors to wind down.
func (s *shardSet) stop() {
	s.mu.Lock()
	s.stopping = true
	procs := make([]*shardProc, 0, len(s.procs))
	for _, p := range s.procs {
		procs = append(procs, p)
	}
	s.mu.Unlock()
	for _, p := range procs {
		if p != nil && p.cmd.Process != nil {
			p.cmd.Process.Signal(os.Interrupt)
		}
	}
	for _, p := range procs {
		if p == nil {
			continue
		}
		select {
		case <-p.done:
		case <-time.After(10 * time.Second):
			p.cmd.Process.Kill()
			<-p.done
		}
	}
	s.wg.Wait()
}

// runDriver is the `hps driver` subcommand: spawn one `hps serve` process
// per MEM-PS shard, train the model against them over real TCP sockets, and
// print the Fig-4-style breakdown including the measured network time. The
// driver supervises its shards — crashed shards are restored (unreplicated)
// or their backups promoted (replicated), under a restart budget — and can
// reshape the ring mid-run with -add-shard/-remove-shard.
func runDriver(args []string) error {
	fs := newTrainFlags("driver")
	shardsFlag := fs.fs.Int("shards", 2, "number of MEM-PS shard processes to spawn")
	lg := fs.fs.Bool("loadgen", false, "serve predictions while training: replay a zipfian query stream against the shards and print the serving report")
	lgDuration := fs.fs.Duration("loadgen-duration", 3*time.Second, "how long the concurrent load generation runs")
	lgConcurrency := fs.fs.Int("loadgen-concurrency", 4, "closed-loop loadgen clients")
	lgBatch := fs.fs.Int("loadgen-batch", 16, "examples per loadgen predict request")

	replicasFlag := fs.fs.Int("replicas", 1, "replication factor R: every key lives on its ring primary plus R-1 backups")
	vnodesFlag := fs.fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per ring member")
	addAfter := fs.fs.Duration("add-shard", 0, "join one fresh shard to the ring this long into the run (0: never)")
	removeAfter := fs.fs.Duration("remove-shard", 0, "retire the highest-id ring shard this long into the run (0: never)")
	restartMax := fs.fs.Int("restart-budget", 3, "max restarts per shard per -restart-window before it is declared permanently lost")
	restartWindow := fs.fs.Duration("restart-window", time.Minute, "sliding window the restart budget is counted over")
	if err := fs.fs.Parse(args); err != nil {
		return err
	}
	if rest := fs.fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected argument %q", rest[0])
	}
	shards := *shardsFlag
	if shards < 1 {
		return fmt.Errorf("need at least one shard, have %d", shards)
	}
	if *replicasFlag < 1 {
		return fmt.Errorf("-replicas must be at least 1, have %d", *replicasFlag)
	}
	if *replicasFlag > shards {
		return fmt.Errorf("-replicas %d exceeds -shards %d", *replicasFlag, shards)
	}
	// Ring placement turns on whenever something needs it: replication or a
	// mid-run membership change. Otherwise the legacy modulo placement keeps
	// historical runs bit-identical.
	ringMode := *replicasFlag > 1 || *addAfter > 0 || *removeAfter > 0

	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("resolve own executable: %w", err)
	}

	// Validate the spec before launching anything: an unknown model must
	// surface as its own error, not as shards dying on startup.
	spec, err := resolveSpec(*fs.modelName, *fs.scale)
	if err != nil {
		return err
	}

	// Every shard gets a durable state directory under one root: the SSD-PS
	// flush target, the push-dedup seq log, and the -restore source after a
	// crash. Without -state-dir the root is temporary — restarts still work
	// within the run, but nothing survives the driver.
	root := *fs.stateDir
	if root == "" {
		d, err := os.MkdirTemp("", "hps-driver-*")
		if err != nil {
			return err
		}
		root = d
		defer os.RemoveAll(d)
	}

	// Driver-mode depth ablation: each depth gets its own shard processes over
	// a fresh subdirectory of root, so no state leaks between sweep points and
	// every depth pays the same real-socket costs.
	if *fs.ablate != "" {
		depths, err := parseDepths(*fs.ablate)
		if err != nil {
			return err
		}
		if *lg || ringMode || *fs.restore || *fs.checkpoint != "" {
			return errors.New("-ablate-depth sweeps fresh runs; it cannot combine with -loadgen, ring flags, -checkpoint or -restore")
		}
		data := dataset.ForModel(spec.SparseParams, spec.NonZerosPerExample)
		return runAblate(fs, spec, data, depths, func(depth int) (*trainer.Trainer, func(), error) {
			set := &shardSet{
				exe: exe, shards: shards, fs: fs,
				root:   filepath.Join(root, fmt.Sprintf("ablate-%d", depth)),
				budget: newRestartBudget(*restartMax, *restartWindow, 250*time.Millisecond),
			}
			if err := set.start(false); err != nil {
				set.stop()
				return nil, nil, err
			}
			cfg := trainer.Config{
				Spec:          spec,
				Data:          data,
				Topology:      cluster.Topology{Nodes: shards, GPUsPerNode: *fs.gpus},
				BatchSize:     *fs.batchSize,
				Batches:       *fs.batches,
				Profile:       hw.DefaultGPUNode(),
				Seed:          *fs.seed,
				RemoteShards:  set.addrs(),
				WirePrecision: *fs.wirePrec,
				QuantizePush:  *fs.quantPush,
				PullPipeline:  *fs.pullPipe,
				RemoteRetry:   cluster.RetryPolicy{Attempts: 10, Backoff: 50 * time.Millisecond},
			}
			fs.applyPipeline(&cfg)
			cfg.MaxInFlight = depth
			cfg.AutoTune = false // the sweep pins the depth being measured
			tr, err := trainer.New(cfg)
			if err != nil {
				set.stop()
				return nil, nil, err
			}
			set.notifyMove(tr.SetShardAddr)
			return tr, set.stop, nil
		})
	}

	var ms *cluster.Membership
	if ringMode {
		members := make([]int, shards)
		for i := range members {
			members[i] = i
		}
		ms = cluster.NewMembership(cluster.NewRing(members, *vnodesFlag))
	}
	set := &shardSet{
		exe: exe, shards: shards, fs: fs, root: root,
		ms: ms, replicas: *replicasFlag, vnodes: *vnodesFlag,
		budget: newRestartBudget(*restartMax, *restartWindow, 250*time.Millisecond),
	}
	defer set.stop()
	if err := set.start(*fs.restore); err != nil {
		return err
	}
	addrs := set.addrs()

	data := dataset.ForModel(spec.SparseParams, spec.NonZerosPerExample)
	cfg := trainer.Config{
		Spec:          spec,
		Data:          data,
		Topology:      cluster.Topology{Nodes: shards, GPUsPerNode: *fs.gpus, Members: ms, Replicas: *replicasFlag},
		BatchSize:     *fs.batchSize,
		Batches:       *fs.batches,
		Profile:       hw.DefaultGPUNode(),
		Seed:          *fs.seed,
		RemoteShards:  addrs,
		WirePrecision: *fs.wirePrec,
		QuantizePush:  *fs.quantPush,
		PullPipeline:  *fs.pullPipe,
		Serve:         *lg,
		// A crashed shard is gone for however long respawn + recovery takes;
		// the widened retry window is what lets in-flight batches ride a
		// restart instead of failing the run.
		RemoteRetry:        cluster.RetryPolicy{Attempts: 10, Backoff: 50 * time.Millisecond},
		CheckpointPath:     fs.checkpointPath(),
		CheckpointInterval: *fs.ckptInterval,
		BatchPause:         *fs.batchPause,
		ShardState:         set.dirs(),
	}
	fs.applyPipeline(&cfg)
	wire := *fs.wirePrec
	if *fs.quantPush {
		wire += "+push"
	}
	fmt.Printf("training model %s against %d MEM-PS shard process(es), %d GPU(s)/node, %d batches x %d examples/node (wire %s, pull pipeline %d, replicas %d)\n\n",
		spec.Name, shards, *fs.gpus, *fs.batches, *fs.batchSize, wire, *fs.pullPipe, *replicasFlag)

	tr, err := trainer.New(cfg)
	if err != nil {
		return err
	}
	defer tr.Close()
	set.notifyMove(tr.SetShardAddr)

	ctx, cancel := signalContext()
	defer cancel()

	if ringMode {
		// The driver's control transport carries membership broadcasts (and
		// nothing else) to the shards.
		ctl := cluster.NewTCPTransport(addrs, spec.EmbeddingDim)
		defer ctl.Close()
		set.notifyMove(ctl.SetAddr)

		var ringMu sync.Mutex
		applyRing := func(next *cluster.Ring) {
			ringMu.Lock()
			defer ringMu.Unlock()
			u := cluster.MembershipUpdate{
				Epoch:    next.Epoch(),
				Members:  next.Members(),
				VNodes:   *vnodesFlag,
				Replicas: *replicasFlag,
				Addrs:    set.addrs(),
			}
			// Shards first — they must accept forwards and transfers for the
			// new ring before the trainer repoints its pushes — and the union
			// of old and new members, so a leaver receives the ring that
			// starts its handoff.
			targets := slices.Clone(ms.Ring().Members())
			for _, id := range next.Members() {
				if !slices.Contains(targets, id) {
					targets = append(targets, id)
				}
			}
			for _, id := range targets {
				if err := ctl.UpdateMembership(id, u); err != nil {
					fmt.Fprintf(os.Stderr, "driver: membership epoch %d to shard %d: %v\n", u.Epoch, id, err)
				}
			}
			// The trainer installs the ring into the shared membership view;
			// the loadgen follows that same view on its next request.
			if err := tr.UpdateMembership(u); err != nil {
				fmt.Fprintf(os.Stderr, "driver: membership epoch %d to trainer: %v\n", u.Epoch, err)
			}
		}
		// First broadcast, one epoch above the shards' flag-derived ring:
		// it carries the address book, which is how shards learn each other.
		applyRing(ms.Ring().WithEpoch(ms.Ring().Epoch() + 1))
		set.onPromote = func(dead int) { applyRing(ms.Ring().Leave(dead)) }
		set.onRejoin = func(int) { applyRing(ms.Ring()) }

		if *addAfter > 0 {
			go func() {
				select {
				case <-time.After(*addAfter):
				case <-ctx.Done():
					return
				}
				if err := set.add(applyRing); err != nil {
					fmt.Fprintf(os.Stderr, "driver: add shard: %v\n", err)
				}
			}()
		}
		if *removeAfter > 0 {
			go func() {
				select {
				case <-time.After(*removeAfter):
				case <-ctx.Done():
					return
				}
				if err := set.remove(applyRing); err != nil {
					fmt.Fprintf(os.Stderr, "driver: remove shard: %v\n", err)
				}
			}()
		}
	}
	// Losing an unreplicated shard for good means part of the model is gone:
	// abort the run instead of spinning on dead connections.
	set.onExhausted = func(int) { cancel() }

	if *fs.restore {
		if cfg.CheckpointPath == "" {
			return fmt.Errorf("-restore needs -checkpoint or -state-dir")
		}
		done, err := tr.Restore(cfg.CheckpointPath)
		if err != nil {
			return err
		}
		fmt.Printf("restored checkpoint %s: resuming at batch %d/%d\n", cfg.CheckpointPath, done, *fs.batches)
	}

	// With -loadgen, the query stream runs concurrently with training — the
	// serving-under-training scenario the serving tier is built for. The
	// loadgen gets its own transport so serving traffic never queues behind
	// training pulls on the driver side either.
	var lgRep loadgen.Report
	var lgErr error
	lgDone := make(chan struct{})
	if *lg {
		lgTransport := cluster.NewTCPTransport(addrs, spec.EmbeddingDim)
		defer lgTransport.Close()
		set.notifyMove(lgTransport.SetAddr)
		go func() {
			defer close(lgDone)
			lgRep, lgErr = loadgen.Run(ctx, loadgen.Config{
				Transport:   lgTransport,
				Nodes:       shards,
				Members:     ms,
				Data:        data,
				Seed:        *fs.seed + 777,
				Duration:    *lgDuration,
				Concurrency: *lgConcurrency,
				BatchSize:   *lgBatch,
			})
		}()
	} else {
		close(lgDone)
	}

	wallStart := time.Now()
	runErr := tr.Run(ctx)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return runErr
	}
	wall := time.Since(wallStart)
	<-lgDone
	if lost := set.fatalLoss(); lost != nil {
		tr.Close()
		return fmt.Errorf("training aborted: %w", lost)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "hps: interrupted; flushing checkpoint")
		return tr.Close()
	}

	report := tr.Report()
	fmt.Print(report.String())
	fmt.Printf("(driver wall time %v)\n", wall.Round(time.Millisecond))
	if losses := set.lossList(); len(losses) > 0 {
		fmt.Printf("\n-- permanent shard losses --\n")
		for _, e := range losses {
			fmt.Printf("  %s\n", e.Error())
		}
	}
	if ringMode {
		fmt.Printf("ring: epoch %d, members %v, replicas %d\n", ms.Epoch(), ms.Ring().Members(), *replicasFlag)
	}
	if *lg {
		if lgErr != nil {
			return fmt.Errorf("loadgen: %w", lgErr)
		}
		fmt.Printf("\n%s", lgRep.String())
	}

	if *fs.evalN > 0 {
		auc, err := tr.Evaluate(dataset.NewGenerator(data, *fs.seed+424243), *fs.evalN)
		if err != nil {
			return err
		}
		fmt.Printf("\nAUC over %d held-out examples: %.4f\n", *fs.evalN, auc)
	}
	// Close before stopping the shards: the final flush goes over the wire.
	if err := tr.Close(); err != nil {
		return err
	}
	return nil
}

// spawnShard launches one `hps serve` child over the given state directory
// and waits for its ready line. extra carries the ring flags in ring mode.
func spawnShard(exe string, shard, shards int, fs *trainFlags, dir string, restore bool, extra []string) (*shardProc, error) {
	args := []string{"serve",
		"-addr", "127.0.0.1:0",
		"-shard", fmt.Sprint(shard),
		"-shards", fmt.Sprint(shards),
		"-model", *fs.modelName,
		"-scale", fmt.Sprint(*fs.scale),
		"-cache-frac", fmt.Sprint(*fs.cacheFrac),
		"-seed", fmt.Sprint(*fs.seed),
		"-dir", dir,
	}
	args = append(args, extra...)
	if restore {
		args = append(args, "-restore")
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn shard %d: %w", shard, err)
	}

	p := &shardProc{cmd: cmd, done: make(chan struct{})}
	addrCh := make(chan string, 1)
	go func() {
		// The goroutine owns the pipe (and the final Wait) for the child's
		// lifetime: it delivers the ready line, keeps draining so the child
		// never blocks on a full pipe, and reaps the child at EOF.
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, shardReadyPrefix) {
				if i := strings.LastIndex(line, "addr="); i >= 0 {
					select {
					case addrCh <- line[i+len("addr="):]:
					default:
					}
				}
			}
		}
		close(addrCh)
		cmd.Wait()
		close(p.done)
	}()

	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			cmd.Process.Kill()
			<-p.done
			return nil, fmt.Errorf("shard %d exited before becoming ready", shard)
		}
		p.addr = addr
		return p, nil
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		<-p.done
		return nil, fmt.Errorf("shard %d did not become ready within 15s", shard)
	}
}
