package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/hw"
	"hps/internal/loadgen"
	"hps/internal/trainer"
)

// shardProc is one spawned `hps serve` child process. done is closed after
// the child has exited and been reaped; the spawn goroutine owns Wait.
type shardProc struct {
	cmd  *exec.Cmd
	addr string
	done chan struct{}
}

// shardSet owns and supervises the spawned shard processes. Each shard has a
// durable state directory under root; a shard that dies while the set is not
// stopping is restarted over that directory with -restore (SSD-PS recovery
// plus the replayed push-dedup log), and every registered transport is
// repointed at the restarted shard's new address.
type shardSet struct {
	exe    string
	shards int
	fs     *trainFlags
	root   string

	mu       sync.Mutex
	procs    []*shardProc
	stopping bool
	onMove   []func(shard int, addr string)
	wg       sync.WaitGroup
}

// dir returns shard i's durable state directory.
func (s *shardSet) dir(i int) string {
	return filepath.Join(s.root, fmt.Sprintf("shard-%d", i))
}

// dirs returns every shard's state directory (the manifest's Shards map).
func (s *shardSet) dirs() map[int]string {
	out := make(map[int]string, s.shards)
	for i := 0; i < s.shards; i++ {
		out[i] = s.dir(i)
	}
	return out
}

// addrs returns the current shard addresses.
func (s *shardSet) addrs() map[int]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]string, len(s.procs))
	for i, p := range s.procs {
		out[i] = p.addr
	}
	return out
}

// notifyMove registers a callback for shard restarts (transport repointing).
func (s *shardSet) notifyMove(f func(shard int, addr string)) {
	s.mu.Lock()
	s.onMove = append(s.onMove, f)
	s.mu.Unlock()
}

// start spawns every shard and begins supervising them.
func (s *shardSet) start(restore bool) error {
	s.procs = make([]*shardProc, s.shards)
	for i := 0; i < s.shards; i++ {
		p, err := spawnShard(s.exe, i, s.shards, s.fs, s.dir(i), restore)
		if err != nil {
			return err
		}
		s.procs[i] = p
		fmt.Printf("shard %d up: pid %d at %s\n", i, p.cmd.Process.Pid, p.addr)
	}
	for i := 0; i < s.shards; i++ {
		s.wg.Add(1)
		go s.supervise(i)
	}
	return nil
}

// supervise watches one shard slot: whenever its process exits unexpectedly,
// it is relaunched with -restore over the same state directory (on a fresh
// port — the old one may linger in TIME_WAIT) and the transports are
// repointed. In-flight RPCs against the dead shard fail and ride the retry
// policy across the outage.
func (s *shardSet) supervise(i int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		p := s.procs[i]
		s.mu.Unlock()
		<-p.done
		s.mu.Lock()
		stopping := s.stopping
		s.mu.Unlock()
		if stopping {
			return
		}
		fmt.Printf("shard %d died (%v); restarting with -restore\n", i, p.cmd.ProcessState)
		np, err := spawnShard(s.exe, i, s.shards, s.fs, s.dir(i), true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "driver: restart shard %d: %v\n", i, err)
			return
		}
		s.mu.Lock()
		s.procs[i] = np
		stopping = s.stopping
		moves := append([]func(int, string){}, s.onMove...)
		s.mu.Unlock()
		if stopping {
			// Shutdown won the race: the restarted shard is not needed.
			np.cmd.Process.Signal(os.Interrupt)
			<-np.done
			return
		}
		for _, f := range moves {
			f(i, np.addr)
		}
		fmt.Printf("shard %d restarted: pid %d at %s\n", i, np.cmd.Process.Pid, np.addr)
	}
}

// stop asks every child to shut down cleanly (flush to SSD-PS, sync the seq
// log), kills stragglers, and waits for the supervisors to wind down.
func (s *shardSet) stop() {
	s.mu.Lock()
	s.stopping = true
	procs := append([]*shardProc{}, s.procs...)
	s.mu.Unlock()
	for _, p := range procs {
		if p != nil && p.cmd.Process != nil {
			p.cmd.Process.Signal(os.Interrupt)
		}
	}
	for _, p := range procs {
		if p == nil {
			continue
		}
		select {
		case <-p.done:
		case <-time.After(10 * time.Second):
			p.cmd.Process.Kill()
			<-p.done
		}
	}
	s.wg.Wait()
}

// runDriver is the `hps driver` subcommand: spawn one `hps serve` process
// per MEM-PS shard, train the model against them over real TCP sockets, and
// print the Fig-4-style breakdown including the measured network time. The
// driver supervises its shards: a shard that crashes mid-run is restarted
// with -restore over its durable state directory, and training rides the
// outage on the transport's retry policy.
func runDriver(args []string) error {
	fs := newTrainFlags("driver")
	shardsFlag := fs.fs.Int("shards", 2, "number of MEM-PS shard processes to spawn")
	lg := fs.fs.Bool("loadgen", false, "serve predictions while training: replay a zipfian query stream against the shards and print the serving report")
	lgDuration := fs.fs.Duration("loadgen-duration", 3*time.Second, "how long the concurrent load generation runs")
	lgConcurrency := fs.fs.Int("loadgen-concurrency", 4, "closed-loop loadgen clients")
	lgBatch := fs.fs.Int("loadgen-batch", 16, "examples per loadgen predict request")
	if err := fs.fs.Parse(args); err != nil {
		return err
	}
	if rest := fs.fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected argument %q", rest[0])
	}
	shards := *shardsFlag
	if shards < 1 {
		return fmt.Errorf("need at least one shard, have %d", shards)
	}

	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("resolve own executable: %w", err)
	}

	// Validate the spec before launching anything: an unknown model must
	// surface as its own error, not as shards dying on startup.
	spec, err := resolveSpec(*fs.modelName, *fs.scale)
	if err != nil {
		return err
	}

	// Every shard gets a durable state directory under one root: the SSD-PS
	// flush target, the push-dedup seq log, and the -restore source after a
	// crash. Without -state-dir the root is temporary — restarts still work
	// within the run, but nothing survives the driver.
	root := *fs.stateDir
	if root == "" {
		d, err := os.MkdirTemp("", "hps-driver-*")
		if err != nil {
			return err
		}
		root = d
		defer os.RemoveAll(d)
	}

	set := &shardSet{exe: exe, shards: shards, fs: fs, root: root}
	defer set.stop()
	if err := set.start(*fs.restore); err != nil {
		return err
	}
	addrs := set.addrs()

	data := dataset.ForModel(spec.SparseParams, spec.NonZerosPerExample)
	cfg := trainer.Config{
		Spec:          spec,
		Data:          data,
		Topology:      cluster.Topology{Nodes: shards, GPUsPerNode: *fs.gpus},
		BatchSize:     *fs.batchSize,
		Batches:       *fs.batches,
		MaxInFlight:   *fs.inFlight,
		Profile:       hw.DefaultGPUNode(),
		Seed:          *fs.seed,
		RemoteShards:  addrs,
		WirePrecision: *fs.wirePrec,
		QuantizePush:  *fs.quantPush,
		PullPipeline:  *fs.pullPipe,
		Serve:         *lg,
		// A crashed shard is gone for however long respawn + recovery takes;
		// the widened retry window is what lets in-flight batches ride a
		// restart instead of failing the run.
		RemoteRetry:        cluster.RetryPolicy{Attempts: 10, Backoff: 50 * time.Millisecond},
		CheckpointPath:     fs.checkpointPath(),
		CheckpointInterval: *fs.ckptInterval,
		BatchPause:         *fs.batchPause,
		ShardState:         set.dirs(),
	}
	wire := *fs.wirePrec
	if *fs.quantPush {
		wire += "+push"
	}
	fmt.Printf("training model %s against %d MEM-PS shard process(es), %d GPU(s)/node, %d batches x %d examples/node (wire %s, pull pipeline %d)\n\n",
		spec.Name, shards, *fs.gpus, *fs.batches, *fs.batchSize, wire, *fs.pullPipe)

	tr, err := trainer.New(cfg)
	if err != nil {
		return err
	}
	defer tr.Close()
	set.notifyMove(tr.SetShardAddr)
	if *fs.restore {
		if cfg.CheckpointPath == "" {
			return fmt.Errorf("-restore needs -checkpoint or -state-dir")
		}
		done, err := tr.Restore(cfg.CheckpointPath)
		if err != nil {
			return err
		}
		fmt.Printf("restored checkpoint %s: resuming at batch %d/%d\n", cfg.CheckpointPath, done, *fs.batches)
	}

	// With -loadgen, the query stream runs concurrently with training — the
	// serving-under-training scenario the serving tier is built for. The
	// loadgen gets its own transport so serving traffic never queues behind
	// training pulls on the driver side either.
	ctx, cancel := signalContext()
	defer cancel()
	var lgRep loadgen.Report
	var lgErr error
	lgDone := make(chan struct{})
	if *lg {
		lgTransport := cluster.NewTCPTransport(addrs, spec.EmbeddingDim)
		defer lgTransport.Close()
		set.notifyMove(lgTransport.SetAddr)
		go func() {
			defer close(lgDone)
			lgRep, lgErr = loadgen.Run(ctx, loadgen.Config{
				Transport:   lgTransport,
				Nodes:       shards,
				Data:        data,
				Seed:        *fs.seed + 777,
				Duration:    *lgDuration,
				Concurrency: *lgConcurrency,
				BatchSize:   *lgBatch,
			})
		}()
	} else {
		close(lgDone)
	}

	wallStart := time.Now()
	runErr := tr.Run(ctx)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return runErr
	}
	wall := time.Since(wallStart)
	<-lgDone
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "hps: interrupted; flushing checkpoint")
		return tr.Close()
	}

	report := tr.Report()
	fmt.Print(report.String())
	fmt.Printf("(driver wall time %v)\n", wall.Round(time.Millisecond))
	if *lg {
		if lgErr != nil {
			return fmt.Errorf("loadgen: %w", lgErr)
		}
		fmt.Printf("\n%s", lgRep.String())
	}

	if *fs.evalN > 0 {
		auc, err := tr.Evaluate(dataset.NewGenerator(data, *fs.seed+424243), *fs.evalN)
		if err != nil {
			return err
		}
		fmt.Printf("\nAUC over %d held-out examples: %.4f\n", *fs.evalN, auc)
	}
	// Close before stopping the shards: the final flush goes over the wire.
	if err := tr.Close(); err != nil {
		return err
	}
	return nil
}

// spawnShard launches one `hps serve` child over the given state directory
// and waits for its ready line.
func spawnShard(exe string, shard, shards int, fs *trainFlags, dir string, restore bool) (*shardProc, error) {
	args := []string{"serve",
		"-addr", "127.0.0.1:0",
		"-shard", fmt.Sprint(shard),
		"-shards", fmt.Sprint(shards),
		"-model", *fs.modelName,
		"-scale", fmt.Sprint(*fs.scale),
		"-cache-frac", fmt.Sprint(*fs.cacheFrac),
		"-seed", fmt.Sprint(*fs.seed),
		"-dir", dir,
	}
	if restore {
		args = append(args, "-restore")
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn shard %d: %w", shard, err)
	}

	p := &shardProc{cmd: cmd, done: make(chan struct{})}
	addrCh := make(chan string, 1)
	go func() {
		// The goroutine owns the pipe (and the final Wait) for the child's
		// lifetime: it delivers the ready line, keeps draining so the child
		// never blocks on a full pipe, and reaps the child at EOF.
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, shardReadyPrefix) {
				if i := strings.LastIndex(line, "addr="); i >= 0 {
					select {
					case addrCh <- line[i+len("addr="):]:
					default:
					}
				}
			}
		}
		close(addrCh)
		cmd.Wait()
		close(p.done)
	}()

	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			cmd.Process.Kill()
			<-p.done
			return nil, fmt.Errorf("shard %d exited before becoming ready", shard)
		}
		p.addr = addr
		return p, nil
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		<-p.done
		return nil, fmt.Errorf("shard %d did not become ready within 15s", shard)
	}
}
