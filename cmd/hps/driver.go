package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/hw"
	"hps/internal/loadgen"
	"hps/internal/trainer"
)

// shardProc is one spawned `hps serve` child process.
type shardProc struct {
	cmd  *exec.Cmd
	addr string
}

// runDriver is the `hps driver` subcommand: spawn one `hps serve` process
// per MEM-PS shard, train the model against them over real TCP sockets, and
// print the Fig-4-style breakdown including the measured network time.
func runDriver(args []string) error {
	fs := newTrainFlags("driver")
	shardsFlag := fs.fs.Int("shards", 2, "number of MEM-PS shard processes to spawn")
	lg := fs.fs.Bool("loadgen", false, "serve predictions while training: replay a zipfian query stream against the shards and print the serving report")
	lgDuration := fs.fs.Duration("loadgen-duration", 3*time.Second, "how long the concurrent load generation runs")
	lgConcurrency := fs.fs.Int("loadgen-concurrency", 4, "closed-loop loadgen clients")
	lgBatch := fs.fs.Int("loadgen-batch", 16, "examples per loadgen predict request")
	if err := fs.fs.Parse(args); err != nil {
		return err
	}
	if rest := fs.fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected argument %q", rest[0])
	}
	shards := *shardsFlag
	if shards < 1 {
		return fmt.Errorf("need at least one shard, have %d", shards)
	}

	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("resolve own executable: %w", err)
	}

	// Validate the spec before launching anything: an unknown model must
	// surface as its own error, not as shards dying on startup.
	spec, err := resolveSpec(*fs.modelName, *fs.scale)
	if err != nil {
		return err
	}

	procs := make([]*shardProc, 0, shards)
	defer func() { stopShards(procs) }()
	addrs := make(map[int]string, shards)
	for i := 0; i < shards; i++ {
		p, err := spawnShard(exe, i, shards, fs)
		if err != nil {
			return err
		}
		procs = append(procs, p)
		addrs[i] = p.addr
		fmt.Printf("shard %d up: pid %d at %s\n", i, p.cmd.Process.Pid, p.addr)
	}
	data := dataset.ForModel(spec.SparseParams, spec.NonZerosPerExample)
	cfg := trainer.Config{
		Spec:          spec,
		Data:          data,
		Topology:      cluster.Topology{Nodes: shards, GPUsPerNode: *fs.gpus},
		BatchSize:     *fs.batchSize,
		Batches:       *fs.batches,
		MaxInFlight:   *fs.inFlight,
		Profile:       hw.DefaultGPUNode(),
		Seed:          *fs.seed,
		RemoteShards:  addrs,
		WirePrecision: *fs.wirePrec,
		QuantizePush:  *fs.quantPush,
		PullPipeline:  *fs.pullPipe,
		Serve:         *lg,
	}
	wire := *fs.wirePrec
	if *fs.quantPush {
		wire += "+push"
	}
	fmt.Printf("training model %s against %d MEM-PS shard process(es), %d GPU(s)/node, %d batches x %d examples/node (wire %s, pull pipeline %d)\n\n",
		spec.Name, shards, *fs.gpus, *fs.batches, *fs.batchSize, wire, *fs.pullPipe)

	tr, err := trainer.New(cfg)
	if err != nil {
		return err
	}
	defer tr.Close()

	// With -loadgen, the query stream runs concurrently with training — the
	// serving-under-training scenario the serving tier is built for. The
	// loadgen gets its own transport so serving traffic never queues behind
	// training pulls on the driver side either.
	var lgRep loadgen.Report
	var lgErr error
	lgDone := make(chan struct{})
	if *lg {
		lgTransport := cluster.NewTCPTransport(addrs, spec.EmbeddingDim)
		defer lgTransport.Close()
		go func() {
			defer close(lgDone)
			lgRep, lgErr = loadgen.Run(context.Background(), loadgen.Config{
				Transport:   lgTransport,
				Nodes:       shards,
				Data:        data,
				Seed:        *fs.seed + 777,
				Duration:    *lgDuration,
				Concurrency: *lgConcurrency,
				BatchSize:   *lgBatch,
			})
		}()
	} else {
		close(lgDone)
	}

	wallStart := time.Now()
	if err := tr.Run(context.Background()); err != nil {
		return err
	}
	wall := time.Since(wallStart)
	<-lgDone

	report := tr.Report()
	fmt.Print(report.String())
	fmt.Printf("(driver wall time %v)\n", wall.Round(time.Millisecond))
	if *lg {
		if lgErr != nil {
			return fmt.Errorf("loadgen: %w", lgErr)
		}
		fmt.Printf("\n%s", lgRep.String())
	}

	if *fs.evalN > 0 {
		auc, err := tr.Evaluate(dataset.NewGenerator(data, *fs.seed+424243), *fs.evalN)
		if err != nil {
			return err
		}
		fmt.Printf("\nAUC over %d held-out examples: %.4f\n", *fs.evalN, auc)
	}
	// Close before stopping the shards: the final flush goes over the wire.
	if err := tr.Close(); err != nil {
		return err
	}
	return nil
}

// spawnShard launches one `hps serve` child and waits for its ready line.
func spawnShard(exe string, shard, shards int, fs *trainFlags) (*shardProc, error) {
	cmd := exec.Command(exe, "serve",
		"-addr", "127.0.0.1:0",
		"-shard", fmt.Sprint(shard),
		"-shards", fmt.Sprint(shards),
		"-model", *fs.modelName,
		"-scale", fmt.Sprint(*fs.scale),
		"-cache-frac", fmt.Sprint(*fs.cacheFrac),
		"-seed", fmt.Sprint(*fs.seed),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn shard %d: %w", shard, err)
	}

	addrCh := make(chan string, 1)
	go func() {
		// The goroutine owns the pipe for the child's lifetime: it delivers
		// the ready line, then keeps draining so the child never blocks on a
		// full pipe.
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, shardReadyPrefix) {
				if i := strings.LastIndex(line, "addr="); i >= 0 {
					select {
					case addrCh <- line[i+len("addr="):]:
					default:
					}
				}
			}
		}
		close(addrCh)
	}()

	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("shard %d exited before becoming ready", shard)
		}
		return &shardProc{cmd: cmd, addr: addr}, nil
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("shard %d did not become ready within 15s", shard)
	}
}

// stopShards asks every child to shut down cleanly (flush to SSD-PS), then
// kills stragglers.
func stopShards(procs []*shardProc) {
	for _, p := range procs {
		if p.cmd.Process != nil {
			p.cmd.Process.Signal(os.Interrupt)
		}
	}
	for _, p := range procs {
		done := make(chan struct{})
		go func(p *shardProc) {
			p.cmd.Wait()
			close(done)
		}(p)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			p.cmd.Process.Kill()
			<-done
		}
	}
}
