package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"hps/internal/blockio"
	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/memps"
	"hps/internal/serving"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

// shardReadyPrefix starts the line a shard server prints on stdout once it
// is accepting connections; the driver scrapes it for the bound address.
const shardReadyPrefix = "hps-shard ready"

// runServe is the `hps serve` subcommand: host one MEM-PS shard (backed by
// its own SSD-PS) behind a TCP server, until SIGINT/SIGTERM. On shutdown the
// shard flushes its in-memory parameters to the SSD-PS, so a restart over
// the same -dir resumes from durable state.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:0", "address to listen on (port 0 picks a free port)")
		shard     = fs.Int("shard", 0, "id of the MEM-PS shard this process serves")
		shards    = fs.Int("shards", 1, "total number of MEM-PS shards in the deployment")
		modelName = fs.String("model", "A", "model being trained: A-E (scaled by -scale) or 'tiny'")
		scale     = fs.Int64("scale", defaultScale, "down-scaling factor applied to the paper models")
		cacheFrac = fs.Float64("cache-frac", 0.25, "MEM-PS cache capacity as a fraction of this shard's parameters")
		dir       = fs.String("dir", "", "SSD-PS directory (empty: a temporary one, removed on exit)")
		restore   = fs.Bool("restore", false, "recover the SSD-PS state already in -dir before serving")
		seed      = fs.Int64("seed", 1, "random seed (must match the driver's)")

		hotCache     = fs.Int("serve-hot-cache", 4096, "serving hot-key replica cache capacity (keys)")
		serveQueue   = fs.Int("serve-queue", 64, "serving admission-queue depth (requests beyond it are rejected as overloaded)")
		serveWorkers = fs.Int("serve-workers", 2, "serving scoring workers")
		serveBatch   = fs.Int("serve-batch", 512, "max examples coalesced into one scoring pass")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected argument %q", rest[0])
	}
	spec, err := resolveSpec(*modelName, *scale)
	if err != nil {
		return err
	}
	if *shard < 0 || *shard >= *shards {
		return fmt.Errorf("shard %d out of range [0, %d)", *shard, *shards)
	}

	root := *dir
	ownsDir := false
	if root == "" {
		d, err := os.MkdirTemp("", fmt.Sprintf("hps-shard-%d-*", *shard))
		if err != nil {
			return err
		}
		root, ownsDir = d, true
	}
	defer func() {
		if ownsDir {
			os.RemoveAll(root)
		}
	}()

	profile := hw.DefaultGPUNode()
	dev, err := blockio.NewDevice(root, profile.SSD, simtime.NewClock())
	if err != nil {
		return err
	}
	shardParams := spec.SparseParams / int64(*shards)
	cacheEntries := int(float64(shardParams) * *cacheFrac)
	if cacheEntries < 128 {
		cacheEntries = 128
	}
	liveBytes := shardParams * int64(8+embedding.EncodedSize(spec.EmbeddingDim))
	store, err := ssdps.Open(dev, ssdps.Config{
		Dim:                     spec.EmbeddingDim,
		DiskUsageThresholdBytes: 2 * liveBytes,
	})
	if err != nil {
		return err
	}
	if *restore {
		// Crash restart: rebuild the key->file mapping from whatever the
		// previous incarnation flushed. The recovery report goes to stderr —
		// the driver passes stderr through, so operators (and the CI smoke
		// test) can see how much state survived.
		if err := store.Recover(); err != nil {
			return fmt.Errorf("recover ssd-ps in %s: %w", root, err)
		}
		fmt.Fprintf(os.Stderr, "hps-shard %d: restored %d parameters from %s\n", *shard, store.Len(), root)
	}
	mem, err := memps.New(memps.Config{
		NodeID:     *shard,
		Dim:        spec.EmbeddingDim,
		Topology:   cluster.Topology{Nodes: *shards, GPUsPerNode: 1},
		Transport:  cluster.NoRoute{}, // a shard server answers; it never proxies peers
		Store:      store,
		LRUEntries: cacheEntries / 2,
		LFUEntries: cacheEntries - cacheEntries/2,
		// The MEM-PS derives its per-node rng from Seed and NodeID exactly as
		// the in-process trainer does, so both modes initialize identically.
		Seed: *seed,
	})
	if err != nil {
		return err
	}

	// The serving tier is always armed: it costs two idle goroutines until a
	// driver started with serving enabled publishes the peer addresses and
	// dense parameters (predicts fail cleanly before that).
	serveSrv, err := serving.New(serving.Config{
		NodeID:        *shard,
		Topology:      cluster.Topology{Nodes: *shards, GPUsPerNode: 1},
		Dim:           spec.EmbeddingDim,
		Hidden:        spec.HiddenLayers,
		Local:         mem,
		HotKeyEntries: *hotCache,
		MaxQueue:      *serveQueue,
		Workers:       *serveWorkers,
		CoalesceBatch: *serveBatch,
	})
	if err != nil {
		return err
	}

	// The dedup tracker persists its applied (client, seq) records next to
	// the SSD-PS: after a crash restart the reloaded log keeps a retried push
	// that was already applied (and acked) by the previous incarnation from
	// being merged a second time.
	seqs := cluster.NewSeqTracker()
	seqLogPath := filepath.Join(root, "seqlog")
	seqLog, replayed, err := cluster.OpenSeqLog(seqLogPath, seqs)
	if err != nil {
		return fmt.Errorf("open seq log: %w", err)
	}
	defer seqLog.Close()
	seqs.AttachLog(seqLog)
	if replayed > 0 {
		fmt.Fprintf(os.Stderr, "hps-shard %d: replayed %d applied-push records from %s\n", *shard, replayed, seqLogPath)
	}

	srv, err := cluster.ServeTCPOptions(*addr, serving.NewHandler(mem, serveSrv), cluster.ServerOptions{Seqs: seqs})
	if err != nil {
		return err
	}
	// The ready line is the driver's cue that the port is bound.
	fmt.Printf("%s shard=%d addr=%s\n", shardReadyPrefix, *shard, srv.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh

	start := time.Now()
	// Close before flushing: once the flush starts, no push may be applied
	// (and acked) that the flush would miss — an acked-but-unflushed update
	// would be silently lost on restart, because the client never resends a
	// push it got a reply for.
	closeErr := srv.Close()
	serveSrv.Close()
	if err := mem.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "hps-shard %d: flush: %v\n", *shard, err)
	}
	// Sync the seq log last: every push acked before srv.Close returned has
	// its record appended, and fsyncing once at shutdown (not per push) is
	// what keeps the dedup log off the push hot path.
	if err := seqLog.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "hps-shard %d: seq log: %v\n", *shard, err)
	}
	st := mem.TierStats()
	fmt.Fprintf(os.Stderr, "hps-shard %d: served %d pulls (%d keys) and %d pushes (%d keys); flushed in %v\n",
		*shard, st.Pulls, st.KeysPulled, st.Pushes, st.KeysPushed, time.Since(start).Round(time.Millisecond))
	if sv := serveSrv.ServingStats(); sv.Requests > 0 || sv.Rejected > 0 {
		fmt.Fprintf(os.Stderr, "hps-shard %d: served %d predicts (%d examples, %d rejected), cache hit rate %.1f%%\n",
			*shard, sv.Requests, sv.Examples, sv.Rejected, 100*sv.CacheHitRate())
	}
	return closeErr
}
