package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hps/internal/blockio"
	"hps/internal/cluster"
	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/memps"
	"hps/internal/serving"
	"hps/internal/simtime"
	"hps/internal/ssdps"
)

// shardReadyPrefix starts the line a shard server prints on stdout once it
// is accepting connections; the driver scrapes it for the bound address.
const shardReadyPrefix = "hps-shard ready"

// parseMembers parses a comma-separated list of shard ids ("0,1,2"); an empty
// string means no ring (legacy modulo placement) and returns nil.
func parseMembers(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ids := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad member id %q: %w", p, err)
		}
		if id < 0 {
			return nil, fmt.Errorf("member id %d is negative", id)
		}
		if slices.Contains(ids, id) {
			return nil, fmt.Errorf("member id %d repeated", id)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// runServe is the `hps serve` subcommand: host one MEM-PS shard (backed by
// its own SSD-PS) behind a TCP server, until SIGINT/SIGTERM. On shutdown the
// shard flushes its in-memory parameters to the SSD-PS, so a restart over
// the same -dir resumes from durable state.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:0", "address to listen on (port 0 picks a free port)")
		shard     = fs.Int("shard", 0, "id of the MEM-PS shard this process serves")
		shards    = fs.Int("shards", 1, "total number of MEM-PS shards in the deployment")
		modelName = fs.String("model", "A", "model being trained: A-E (scaled by -scale) or 'tiny'")
		scale     = fs.Int64("scale", defaultScale, "down-scaling factor applied to the paper models")
		cacheFrac = fs.Float64("cache-frac", 0.25, "MEM-PS cache capacity as a fraction of this shard's parameters")
		dir       = fs.String("dir", "", "SSD-PS directory (empty: a temporary one, removed on exit)")
		restore   = fs.Bool("restore", false, "recover the SSD-PS state already in -dir before serving")
		seed      = fs.Int64("seed", 1, "random seed (must match the driver's)")

		hotCache     = fs.Int("serve-hot-cache", 4096, "serving hot-key replica cache capacity (keys)")
		serveQueue   = fs.Int("serve-queue", 64, "serving admission-queue depth (requests beyond it are rejected as overloaded)")
		serveWorkers = fs.Int("serve-workers", 2, "serving scoring workers")
		serveBatch   = fs.Int("serve-batch", 512, "max examples coalesced into one scoring pass")

		members  = fs.String("members", "", "comma-separated shard ids on the consistent-hash ring (empty: modulo placement over -shards)")
		replicas = fs.Int("replicas", 1, "replication factor R: each key lives on its primary plus R-1 backups (needs -members)")
		vnodes   = fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per ring member")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected argument %q", rest[0])
	}
	spec, err := resolveSpec(*modelName, *scale)
	if err != nil {
		return err
	}
	memberIDs, err := parseMembers(*members)
	if err != nil {
		return err
	}
	if memberIDs == nil {
		if *shard < 0 || *shard >= *shards {
			return fmt.Errorf("shard %d out of range [0, %d)", *shard, *shards)
		}
		if *replicas > 1 {
			return fmt.Errorf("-replicas %d needs -members (replication places keys on the ring)", *replicas)
		}
	} else if !slices.Contains(memberIDs, *shard) {
		return fmt.Errorf("shard %d is not in -members %s", *shard, *members)
	}

	root := *dir
	ownsDir := false
	if root == "" {
		d, err := os.MkdirTemp("", fmt.Sprintf("hps-shard-%d-*", *shard))
		if err != nil {
			return err
		}
		root, ownsDir = d, true
	}
	defer func() {
		if ownsDir {
			os.RemoveAll(root)
		}
	}()

	profile := hw.DefaultGPUNode()
	dev, err := blockio.NewDevice(root, profile.SSD, simtime.NewClock())
	if err != nil {
		return err
	}
	shardParams := spec.SparseParams / int64(*shards)
	cacheEntries := int(float64(shardParams) * *cacheFrac)
	if cacheEntries < 128 {
		cacheEntries = 128
	}
	liveBytes := shardParams * int64(8+embedding.EncodedSize(spec.EmbeddingDim))
	store, err := ssdps.Open(dev, ssdps.Config{
		Dim:                     spec.EmbeddingDim,
		DiskUsageThresholdBytes: 2 * liveBytes,
	})
	if err != nil {
		return err
	}
	if *restore {
		// Crash restart: rebuild the key->file mapping from whatever the
		// previous incarnation flushed. The recovery report goes to stderr —
		// the driver passes stderr through, so operators (and the CI smoke
		// test) can see how much state survived.
		if err := store.Recover(); err != nil {
			return fmt.Errorf("recover ssd-ps in %s: %w", root, err)
		}
		fmt.Fprintf(os.Stderr, "hps-shard %d: restored %d parameters from %s\n", *shard, store.Len(), root)
	}
	topo := cluster.Topology{Nodes: *shards, GPUsPerNode: 1}
	var peerTr *cluster.TCPTransport
	if memberIDs != nil {
		topo.Members = cluster.NewMembership(cluster.NewRing(memberIDs, *vnodes))
		topo.Replicas = *replicas
		// One shared peer transport: serving failover reads through it, the
		// replicator forwards and transfers through it, and membership updates
		// from the driver teach it the peer address book (the empty map — a
		// shard never knows peer addresses at boot).
		peerTr = cluster.NewTCPTransport(map[int]string{}, spec.EmbeddingDim)
		defer peerTr.Close()
	}
	mem, err := memps.New(memps.Config{
		NodeID:     *shard,
		Dim:        spec.EmbeddingDim,
		Topology:   topo,
		Transport:  cluster.NoRoute{}, // a shard server answers; it never proxies peers
		Store:      store,
		LRUEntries: cacheEntries / 2,
		LFUEntries: cacheEntries - cacheEntries/2,
		// The MEM-PS derives its per-node rng from Seed and NodeID exactly as
		// the in-process trainer does, so both modes initialize identically.
		Seed: *seed,
	})
	if err != nil {
		return err
	}

	// The serving tier is always armed: it costs two idle goroutines until a
	// driver started with serving enabled publishes the peer addresses and
	// dense parameters (predicts fail cleanly before that).
	serveCfg := serving.Config{
		NodeID:        *shard,
		Topology:      topo,
		Dim:           spec.EmbeddingDim,
		Hidden:        spec.HiddenLayers,
		Local:         mem,
		HotKeyEntries: *hotCache,
		MaxQueue:      *serveQueue,
		Workers:       *serveWorkers,
		CoalesceBatch: *serveBatch,
	}
	if peerTr != nil {
		serveCfg.Peers = peerTr
	}
	serveSrv, err := serving.New(serveCfg)
	if err != nil {
		return err
	}

	handler := serving.NewHandler(mem, serveSrv)
	var repl *memps.Replicator
	if peerTr != nil {
		repl = memps.NewReplicator(mem, peerTr, memps.ReplicatorConfig{})
		handler.Replicator = repl
		handler.Peers = peerTr
	}
	if *restore {
		// A restarted (or promoted-into) shard boots with a cold serving
		// cache; prewarm it with the hottest recovered rows so the first
		// post-failover predicts hit locally instead of stampeding peers.
		if n := handler.WarmServing(*hotCache); n > 0 {
			fmt.Fprintf(os.Stderr, "hps-shard %d: warmed serving cache with %d recovered rows\n", *shard, n)
		}
	}

	// The dedup tracker persists its applied (client, seq) records next to
	// the SSD-PS: after a crash restart the reloaded log keeps a retried push
	// that was already applied (and acked) by the previous incarnation from
	// being merged a second time.
	seqs := cluster.NewSeqTracker()
	seqLogPath := filepath.Join(root, "seqlog")
	seqLog, replayed, err := cluster.OpenSeqLog(seqLogPath, seqs)
	if err != nil {
		return fmt.Errorf("open seq log: %w", err)
	}
	defer seqLog.Close()
	seqs.AttachLog(seqLog)
	handler.Seqs = seqs
	if replayed > 0 {
		fmt.Fprintf(os.Stderr, "hps-shard %d: replayed %d applied-push records from %s\n", *shard, replayed, seqLogPath)
	}

	srv, err := cluster.ServeTCPOptions(*addr, handler, cluster.ServerOptions{Seqs: seqs})
	if err != nil {
		return err
	}
	// The ready line is the driver's cue that the port is bound.
	fmt.Printf("%s shard=%d addr=%s\n", shardReadyPrefix, *shard, srv.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh

	start := time.Now()
	// Close before flushing: once the flush starts, no push may be applied
	// (and acked) that the flush would miss — an acked-but-unflushed update
	// would be silently lost on restart, because the client never resends a
	// push it got a reply for.
	closeErr := srv.Close()
	serveSrv.Close()
	if repl != nil {
		// Flush the forward queue before stopping: a backup must see every
		// delta its primary acked, or the origin's dedup stamp would mask the
		// loss forever (the retry is acknowledged as a duplicate).
		if !repl.Drain(5 * time.Second) {
			fmt.Fprintf(os.Stderr, "hps-shard %d: replication queue did not drain\n", *shard)
		}
		repl.Close()
	}
	if err := mem.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "hps-shard %d: flush: %v\n", *shard, err)
	}
	// The flush made every applied push durable: compact the dedup log down
	// to its live window so the shard directory does not accrete one record
	// per push across incarnations.
	if _, err := seqs.CompactLog(); err != nil {
		fmt.Fprintf(os.Stderr, "hps-shard %d: compact seq log: %v\n", *shard, err)
	}
	// Sync the seq log last: every push acked before srv.Close returned has
	// its record appended, and fsyncing once at shutdown (not per push) is
	// what keeps the dedup log off the push hot path.
	if err := seqLog.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "hps-shard %d: seq log: %v\n", *shard, err)
	}
	st := mem.TierStats()
	fmt.Fprintf(os.Stderr, "hps-shard %d: served %d pulls (%d keys) and %d pushes (%d keys); flushed in %v\n",
		*shard, st.Pulls, st.KeysPulled, st.Pushes, st.KeysPushed, time.Since(start).Round(time.Millisecond))
	if sv := serveSrv.ServingStats(); sv.Requests > 0 || sv.Rejected > 0 {
		fmt.Fprintf(os.Stderr, "hps-shard %d: served %d predicts (%d examples, %d rejected), cache hit rate %.1f%%\n",
			*shard, sv.Requests, sv.Examples, sv.Rejected, 100*sv.CacheHitRate())
	}
	if repl != nil {
		if rs := repl.Stats(); rs.Forwarded > 0 || rs.Transferred > 0 {
			fmt.Fprintf(os.Stderr, "hps-shard %d: replicated %d blocks (%d keys, %d errors, max lag %d blocks); transferred %d blocks (%d keys)\n",
				*shard, rs.Forwarded, rs.ForwardedKeys, rs.Errors, rs.MaxPending, rs.Transferred, rs.TransferredKeys)
		}
	}
	return closeErr
}
