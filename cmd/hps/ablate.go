package main

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"hps/internal/dataset"
	"hps/internal/model"
	"hps/internal/trainer"
)

// This file implements `-ablate-depth`: the Fig-3(b)-style sweep that trains
// the same seeded workload at several pipeline depths and tabulates the
// staleness-for-throughput trade — throughput per depth next to the AUC cost
// relative to the depth-1 (strictly synchronous, Algorithm-1-ordered) run.
// Both the in-process and the driver (multi-process) modes feed it through a
// per-depth trainer factory.

// parseDepths parses the -ablate-depth flag ("1,2,4,8") into a sorted,
// deduplicated depth list.
func parseDepths(s string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil || d < 1 {
			return nil, fmt.Errorf("-ablate-depth: %q is not a positive depth", part)
		}
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("-ablate-depth: no depths given")
	}
	sort.Ints(out)
	return out, nil
}

// ablationRow is one depth's measured outcome.
type ablationRow struct {
	depth    int
	batches  int64
	examples int64
	auc      float64
	wall     time.Duration
}

// runAblate sweeps the given pipeline depths: each depth trains the identical
// seeded workload on a fresh trainer from the factory, is timed on real wall
// clock, evaluated on the same held-out stream, and torn down before the next
// depth starts. The factory's cleanup (shard teardown in driver mode) runs
// after the trainer is closed, so final flushes still reach the shards.
func runAblate(fs *trainFlags, spec model.Spec, data dataset.Config,
	depths []int, factory func(depth int) (*trainer.Trainer, func(), error)) error {
	evalN := *fs.evalN
	if evalN <= 0 {
		evalN = 800 // the table is meaningless without an AUC column
	}
	ctx, cancel := signalContext()
	defer cancel()

	mode := "sync"
	if *fs.asyncPush {
		mode = fmt.Sprintf("async-push lag %d", *fs.pushLag)
	}
	fmt.Printf("ablation: model %s, %d batches x %d examples/node, push mode %s, depths %v\n",
		spec.Name, *fs.batches, *fs.batchSize, mode, depths)

	rows := make([]ablationRow, 0, len(depths))
	for _, depth := range depths {
		tr, cleanup, err := factory(depth)
		if err != nil {
			return fmt.Errorf("depth %d: %w", depth, err)
		}
		start := time.Now()
		runErr := tr.Run(ctx)
		wall := time.Since(start)
		if runErr != nil {
			tr.Close()
			if cleanup != nil {
				cleanup()
			}
			return fmt.Errorf("depth %d: %w", depth, runErr)
		}
		rep := tr.Report()
		auc, err := tr.Evaluate(dataset.NewGenerator(data, *fs.seed+424243), evalN)
		closeErr := tr.Close()
		if cleanup != nil {
			cleanup()
		}
		if err != nil {
			return fmt.Errorf("depth %d: evaluate: %w", depth, err)
		}
		if closeErr != nil {
			return fmt.Errorf("depth %d: %w", depth, closeErr)
		}
		fmt.Printf("  depth %d done: %d batches in %v, AUC %.4f\n",
			depth, rep.Batches, wall.Round(time.Millisecond), auc)
		rows = append(rows, ablationRow{
			depth: depth, batches: rep.Batches, examples: rep.Examples,
			auc: auc, wall: wall,
		})
	}

	fmt.Printf("\n-- AUC vs pipeline depth (%d held-out examples) --\n", evalN)
	fmt.Printf("%6s %12s %12s %9s %9s %12s\n", "depth", "batches/s", "examples/s", "AUC", "dAUC", "wall")
	base := rows[0].auc // rows are depth-sorted, so row 0 is the shallowest (depth 1 when swept)
	for _, r := range rows {
		secs := r.wall.Seconds()
		var bps, eps float64
		if secs > 0 {
			bps = float64(r.batches) / secs
			eps = float64(r.examples) / secs
		}
		fmt.Printf("%6d %12.1f %12.1f %9.4f %+9.4f %12v\n",
			r.depth, bps, eps, r.auc, r.auc-base, r.wall.Round(time.Millisecond))
	}
	if rows[0].depth == 1 && len(rows) > 1 {
		last := rows[len(rows)-1]
		if last.wall > 0 && rows[0].wall > 0 {
			s0 := float64(rows[0].batches) / rows[0].wall.Seconds()
			s1 := float64(last.batches) / last.wall.Seconds()
			if s0 > 0 {
				fmt.Printf("depth %d vs 1: %.2fx batches/s, dAUC %+.4f\n",
					last.depth, s1/s0, last.auc-base)
			}
		}
	}
	return nil
}
