package main

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"time"

	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/loadgen"
)

// runLoadgen is the `hps loadgen` subcommand: replay a zipfian query stream
// against the serving tier of a live cluster (one whose driver was started
// with -loadgen, or any cluster whose shards received a ServeConfig) and
// print the serving report.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		addrsFlag   = fs.String("addrs", "", "comma-separated shard addresses, in shard-id order (required)")
		modelName   = fs.String("model", "A", "model being served: A-E (scaled by -scale) or 'tiny'")
		scale       = fs.Int64("scale", defaultScale, "down-scaling factor applied to the paper models")
		duration    = fs.Duration("duration", 5*time.Second, "how long to generate load")
		concurrency = fs.Int("concurrency", 4, "closed-loop client goroutines")
		batch       = fs.Int("batch", 16, "examples per predict request")
		seed        = fs.Int64("seed", 99, "random seed for the query streams")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected argument %q", rest[0])
	}
	if *addrsFlag == "" {
		return fmt.Errorf("loadgen requires -addrs (comma-separated shard addresses)")
	}
	spec, err := resolveSpec(*modelName, *scale)
	if err != nil {
		return err
	}
	parts := strings.Split(*addrsFlag, ",")
	addrs := make(map[int]string, len(parts))
	for i, a := range parts {
		a = strings.TrimSpace(a)
		if a == "" {
			return fmt.Errorf("empty address at position %d in -addrs", i)
		}
		addrs[i] = a
	}

	transport := cluster.NewTCPTransport(addrs, spec.EmbeddingDim)
	defer transport.Close()
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Transport:   transport,
		Nodes:       len(addrs),
		Data:        dataset.ForModel(spec.SparseParams, spec.NonZerosPerExample),
		Seed:        *seed,
		Duration:    *duration,
		Concurrency: *concurrency,
		BatchSize:   *batch,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	return nil
}
