// Command hps trains a scaled-down replica of one of the paper's production
// CTR models (Table 3, models A-E) end to end through the full hierarchical
// parameter server — HDFS stream -> MEM-PS/SSD-PS pull -> HBM-PS multi-GPU
// training -> synchronized push — and prints the Fig-4-style throughput and
// latency breakdown, optionally alongside the MPI-cluster baseline.
//
// Four modes:
//
//	hps [train flags]      in-process: every simulated node in one process
//	hps serve  -shard i    host one MEM-PS shard (training + online serving)
//	                       behind a TCP server
//	hps driver -shards n   spawn n `hps serve` processes and train against
//	                       them over real sockets; -loadgen additionally
//	                       replays a zipfian query stream against the shards
//	                       while they train and prints the serving report
//	hps loadgen -addrs a,b replay a zipfian query stream against an already
//	                       running cluster's serving tier
//
// Examples:
//
//	go run ./cmd/hps                         # model A at bench scale
//	go run ./cmd/hps -model C -nodes 4 -gpus 8
//	go run ./cmd/hps -model tiny -batches 50 -baseline
//	go run ./cmd/hps driver -model tiny -shards 2 -batches 20
//	go run ./cmd/hps driver -model tiny -shards 2 -batches 40 -loadgen
//	go run ./cmd/hps driver -model tiny -shards 2 -state-dir /data/run -checkpoint-interval 10
//	go run ./cmd/hps driver -model tiny -shards 2 -state-dir /data/run -restore  # resume
//	go run ./cmd/hps loadgen -model tiny -addrs 127.0.0.1:7001,127.0.0.1:7002
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/model"
	"hps/internal/mpips"
	"hps/internal/trainer"
)

// defaultScale is the down-scaling factor applied to the paper models by
// every mode's -scale flag.
const defaultScale = model.BenchScale

// trainFlags are the flags shared by the train and driver modes.
type trainFlags struct {
	fs        *flag.FlagSet
	modelName *string
	scale     *int64
	gpus      *int
	batches   *int
	batchSize *int
	inFlight  *int
	cacheFrac *float64
	evalN     *int
	seed      *int64
	wirePrec  *string
	quantPush *bool
	pullPipe  *int

	stateDir     *string
	checkpoint   *string
	ckptInterval *int
	restore      *bool
	batchPause   *time.Duration

	maxInFlight *int
	asyncPush   *bool
	pushLag     *int
	ablate      *string
}

// applyPipeline wires the adaptive/async pipeline flags into a trainer
// config: -max-in-flight > 0 arms the auto-tuner with that ceiling
// (overriding the static -inflight depth), and -async-push/-push-lag
// configure the background push committer.
func (f *trainFlags) applyPipeline(cfg *trainer.Config) {
	cfg.MaxInFlight = *f.inFlight
	if *f.maxInFlight > 0 {
		cfg.MaxInFlight = *f.maxInFlight
		cfg.AutoTune = true
	}
	cfg.AsyncPush = *f.asyncPush
	cfg.PushLag = *f.pushLag
}

// checkpointPath resolves the effective manifest path: -checkpoint wins, and
// a durable -state-dir implies a default manifest inside it (durable state
// without a resumable cursor would be a trap).
func (f *trainFlags) checkpointPath() string {
	if *f.checkpoint != "" {
		return *f.checkpoint
	}
	if *f.stateDir != "" {
		return filepath.Join(*f.stateDir, "checkpoint.json")
	}
	return ""
}

func newTrainFlags(name string) *trainFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &trainFlags{
		fs:        fs,
		modelName: fs.String("model", "A", "model to train: A-E (Table 3, scaled by -scale) or 'tiny'"),
		scale:     fs.Int64("scale", defaultScale, "down-scaling factor applied to the paper models"),
		gpus:      fs.Int("gpus", 4, "GPUs per node"),
		batches:   fs.Int("batches", 30, "batches to train per node"),
		batchSize: fs.Int("batch-size", 256, "examples per batch per node"),
		inFlight:  fs.Int("inflight", 4, "pipeline depth (1 = no prefetch overlap)"),
		cacheFrac: fs.Float64("cache-frac", 0.25, "MEM-PS cache capacity as a fraction of the per-node parameter shard"),
		evalN:     fs.Int("eval", 2000, "examples for the final AUC evaluation (0 to skip)"),
		seed:      fs.Int64("seed", 1, "random seed"),
		wirePrec:  fs.String("wire-precision", "fp32", "on-wire embedding row encoding in multi-process mode: fp32, fp16 or int8"),
		quantPush: fs.Bool("quantize-push", false, "also encode push deltas at -wire-precision instead of fp32 (multi-process mode)"),
		pullPipe:  fs.Int("pull-pipeline", 1, "concurrent block RPCs per shard during the pull stage (multi-process mode)"),

		stateDir:     fs.String("state-dir", "", "durable state root: SSD-PS shard directories and the default checkpoint manifest (empty: temporary, removed on exit)"),
		checkpoint:   fs.String("checkpoint", "", "checkpoint manifest path (default <state-dir>/checkpoint.json when -state-dir is set)"),
		ckptInterval: fs.Int("checkpoint-interval", 0, "also write a checkpoint every N trained batches (0: only at flush/shutdown)"),
		restore:      fs.Bool("restore", false, "resume from the checkpoint manifest and the recovered shard state before training"),
		batchPause:   fs.Duration("batch-pause", 0, "artificial pause after every trained batch (stretches runs for crash drills)"),

		maxInFlight: fs.Int("max-in-flight", 0, "auto-tune per-stage queues and pipeline depth from measured stage times, up to this ceiling (0: static -inflight depth)"),
		asyncPush:   fs.Bool("async-push", false, "apply merged pushes on a bounded background committer so the pipeline slot frees before the MEM-PS round trip"),
		pushLag:     fs.Int("push-lag", 2, "max outstanding background pushes with -async-push"),
		ablate:      fs.String("ablate-depth", "", "comma-separated pipeline depths (e.g. 1,2,4,8): train the same seeded workload at each depth and print the AUC-vs-depth table"),
	}
}

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "serve":
		err = runServe(args[1:])
	case len(args) > 0 && args[0] == "driver":
		err = runDriver(args[1:])
	case len(args) > 0 && args[0] == "loadgen":
		err = runLoadgen(args[1:])
	case len(args) > 0 && !strings.HasPrefix(args[0], "-"):
		// A bare word that is not a known subcommand is almost certainly a
		// typo for one; running a full default training instead would be a
		// silent surprise.
		err = fmt.Errorf("unknown subcommand %q (want serve, driver, loadgen, or train flags)", args[0])
	default:
		err = runTrain(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hps:", err)
		os.Exit(1)
	}
}

// runTrain is the in-process mode (the default, flag-compatible with the
// original command).
func runTrain(args []string) error {
	fs := newTrainFlags("hps")
	nodes := fs.fs.Int("nodes", 2, "number of GPU nodes")
	baseline := fs.fs.Bool("baseline", false, "also run the MPI-cluster baseline and report the modelled speedup")
	if err := fs.fs.Parse(args); err != nil {
		return err
	}
	if rest := fs.fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected argument %q", rest[0])
	}
	return run(fs, *nodes, *baseline)
}

func resolveSpec(name string, scale int64) (model.Spec, error) {
	if name == "tiny" {
		return model.TinySpec(), nil
	}
	spec, ok := model.Get(name)
	if !ok {
		return model.Spec{}, fmt.Errorf("unknown model %q (want A-E or tiny)", name)
	}
	return spec.Scaled(scale), nil
}

func run(fs *trainFlags, nodes int, baseline bool) error {
	spec, err := resolveSpec(*fs.modelName, *fs.scale)
	if err != nil {
		return err
	}
	topo := cluster.Topology{Nodes: nodes, GPUsPerNode: *fs.gpus}
	if err := topo.Validate(); err != nil {
		return err
	}
	data := dataset.ForModel(spec.SparseParams, spec.NonZerosPerExample)
	batches, batchSize, seed := *fs.batches, *fs.batchSize, *fs.seed

	// Size each node's MEM-PS cache relative to its parameter shard so the
	// memory hierarchy actually works: the hot set stays resident, the cold
	// tail lives on the SSD-PS.
	shard := spec.SparseParams / int64(nodes)
	cacheEntries := int(float64(shard) * *fs.cacheFrac)
	if cacheEntries < 128 {
		cacheEntries = 128
	}
	// Let compaction trigger once stale copies exceed the live model size.
	liveBytes := shard * int64(8+embedding.EncodedSize(spec.EmbeddingDim))

	cfg := trainer.Config{
		Spec:               spec,
		Data:               data,
		Topology:           topo,
		BatchSize:          batchSize,
		Batches:            batches,
		Profile:            hw.DefaultGPUNode(),
		LRUEntries:         cacheEntries / 2,
		LFUEntries:         cacheEntries - cacheEntries/2,
		SSDThresholdBytes:  2 * liveBytes,
		Seed:               seed,
		Dir:                *fs.stateDir,
		CheckpointPath:     fs.checkpointPath(),
		CheckpointInterval: *fs.ckptInterval,
		BatchPause:         *fs.batchPause,
	}
	fs.applyPipeline(&cfg)

	if *fs.ablate != "" {
		depths, err := parseDepths(*fs.ablate)
		if err != nil {
			return err
		}
		if *fs.stateDir != "" || *fs.restore || *fs.checkpoint != "" {
			return fmt.Errorf("-ablate-depth sweeps fresh runs; it cannot combine with -state-dir/-checkpoint/-restore")
		}
		return runAblate(fs, spec, data, depths, func(depth int) (*trainer.Trainer, func(), error) {
			c := cfg
			c.MaxInFlight = depth
			c.AutoTune = false // the sweep pins the depth being measured
			c.Dir = ""
			c.CheckpointPath = ""
			c.CheckpointInterval = 0
			tr, err := trainer.New(c)
			return tr, nil, err
		})
	}

	fmt.Printf("training model %s: %d sparse params, dim %d, %d non-zeros/example, dense %v\n",
		spec.Name, spec.SparseParams, spec.EmbeddingDim, spec.NonZerosPerExample, spec.HiddenLayers)
	fmt.Printf("topology: %d node(s) x %d GPU(s), %d batches x %d examples/node, pipeline depth %d\n\n",
		nodes, *fs.gpus, batches, batchSize, cfg.MaxInFlight)

	tr, err := trainer.New(cfg)
	if err != nil {
		return err
	}
	defer tr.Close()
	if *fs.restore {
		if cfg.CheckpointPath == "" {
			return fmt.Errorf("-restore needs -checkpoint or -state-dir")
		}
		done, err := tr.Restore(cfg.CheckpointPath)
		if err != nil {
			return err
		}
		fmt.Printf("restored checkpoint %s: resuming at batch %d/%d\n", cfg.CheckpointPath, done, batches)
	}

	// SIGINT/SIGTERM cut the run short but not dirty: Run unwinds, and the
	// deferred Close flushes every shard and publishes a final checkpoint
	// manifest — the resumable-training half of the crash story (kill -9 is
	// the other half, covered by the shards' own durability).
	ctx, cancel := signalContext()
	defer cancel()
	wallStart := time.Now()
	runErr := tr.Run(ctx)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return runErr
	}
	wall := time.Since(wallStart)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "hps: interrupted; flushing checkpoint")
		return tr.Close()
	}

	report := tr.Report()
	fmt.Print(report.String())
	fmt.Printf("(simulation wall time %v)\n", wall.Round(time.Millisecond))

	if *fs.evalN > 0 {
		auc, err := tr.Evaluate(dataset.NewGenerator(data, seed+424243), *fs.evalN)
		if err != nil {
			return err
		}
		fmt.Printf("\nAUC over %d held-out examples: %.4f\n", *fs.evalN, auc)
	}

	if baseline {
		if err := runBaseline(spec, data, report.Throughput.ExamplesPerSecond(), nodes, batches, batchSize, seed); err != nil {
			return err
		}
	}
	return nil
}

// signalContext returns a context cancelled by SIGINT/SIGTERM. The second
// signal is left to the default handler, so a stuck shutdown can still be
// killed interactively.
func signalContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-sigCh:
			signal.Stop(sigCh)
			cancel()
		case <-ctx.Done():
			signal.Stop(sigCh)
		}
	}()
	return ctx, cancel
}

// runBaseline trains the MPI-cluster baseline on the same workload and
// prints the modelled speedup (the Table 4 comparison).
func runBaseline(spec model.Spec, data dataset.Config, hpsRate float64, gpuNodes, batches, batchSize int, seed int64) error {
	mpiNodes := spec.MPINodes
	if mpiNodes <= 0 {
		mpiNodes = 10
	}
	c, err := mpips.New(mpips.Config{Nodes: mpiNodes, Spec: spec, Seed: seed})
	if err != nil {
		return err
	}
	gen := dataset.NewGenerator(data, seed)
	for i := 0; i < batches; i++ {
		if err := c.TrainBatch(gen.NextBatch(batchSize)); err != nil {
			return err
		}
	}
	mpiRate := c.Throughput().ExamplesPerSecond()
	fmt.Printf("\n-- MPI baseline (%d CPU nodes) --\n", mpiNodes)
	bd := c.Breakdown()
	n := time.Duration(batches)
	fmt.Printf("per-node batch time %v (read %v, pull/push %v, compute %v)\n",
		c.PerNodeBatchTime().Round(time.Microsecond), (bd.ReadExamples / n).Round(time.Microsecond),
		(bd.PullPush / n).Round(time.Microsecond), (bd.Compute / n).Round(time.Microsecond))
	fmt.Printf("cluster throughput %.0f examples/s\n", mpiRate)
	if mpiRate > 0 {
		speedup := hpsRate / mpiRate
		fmt.Printf("hierarchical vs MPI speedup: %.2fx raw", speedup)
		fmt.Printf(", %.2fx cost-normalized (1 GPU node ~ %.0f MPI nodes)\n",
			speedup/float64(gpuNodes)/hw.CostGPUNodesPerMPINode*float64(mpiNodes),
			hw.CostGPUNodesPerMPINode)
		if spec.PaperSpeedup > 0 {
			fmt.Printf("(paper reports %.1fx for model %s at production scale)\n", spec.PaperSpeedup, spec.Name)
		}
	}
	return nil
}
