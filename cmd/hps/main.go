// Command hps trains a scaled-down replica of one of the paper's production
// CTR models (Table 3, models A-E) end to end through the full hierarchical
// parameter server — HDFS stream -> MEM-PS/SSD-PS pull -> HBM-PS multi-GPU
// training -> synchronized push — and prints the Fig-4-style throughput and
// latency breakdown, optionally alongside the MPI-cluster baseline.
//
// Four modes:
//
//	hps [train flags]      in-process: every simulated node in one process
//	hps serve  -shard i    host one MEM-PS shard (training + online serving)
//	                       behind a TCP server
//	hps driver -shards n   spawn n `hps serve` processes and train against
//	                       them over real sockets; -loadgen additionally
//	                       replays a zipfian query stream against the shards
//	                       while they train and prints the serving report
//	hps loadgen -addrs a,b replay a zipfian query stream against an already
//	                       running cluster's serving tier
//
// Examples:
//
//	go run ./cmd/hps                         # model A at bench scale
//	go run ./cmd/hps -model C -nodes 4 -gpus 8
//	go run ./cmd/hps -model tiny -batches 50 -baseline
//	go run ./cmd/hps driver -model tiny -shards 2 -batches 20
//	go run ./cmd/hps driver -model tiny -shards 2 -batches 40 -loadgen
//	go run ./cmd/hps loadgen -model tiny -addrs 127.0.0.1:7001,127.0.0.1:7002
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hps/internal/cluster"
	"hps/internal/dataset"
	"hps/internal/embedding"
	"hps/internal/hw"
	"hps/internal/model"
	"hps/internal/mpips"
	"hps/internal/trainer"
)

// defaultScale is the down-scaling factor applied to the paper models by
// every mode's -scale flag.
const defaultScale = model.BenchScale

// trainFlags are the flags shared by the train and driver modes.
type trainFlags struct {
	fs        *flag.FlagSet
	modelName *string
	scale     *int64
	gpus      *int
	batches   *int
	batchSize *int
	inFlight  *int
	cacheFrac *float64
	evalN     *int
	seed      *int64
	wirePrec  *string
	quantPush *bool
	pullPipe  *int
}

func newTrainFlags(name string) *trainFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &trainFlags{
		fs:        fs,
		modelName: fs.String("model", "A", "model to train: A-E (Table 3, scaled by -scale) or 'tiny'"),
		scale:     fs.Int64("scale", defaultScale, "down-scaling factor applied to the paper models"),
		gpus:      fs.Int("gpus", 4, "GPUs per node"),
		batches:   fs.Int("batches", 30, "batches to train per node"),
		batchSize: fs.Int("batch-size", 256, "examples per batch per node"),
		inFlight:  fs.Int("inflight", 4, "pipeline depth (1 = no prefetch overlap)"),
		cacheFrac: fs.Float64("cache-frac", 0.25, "MEM-PS cache capacity as a fraction of the per-node parameter shard"),
		evalN:     fs.Int("eval", 2000, "examples for the final AUC evaluation (0 to skip)"),
		seed:      fs.Int64("seed", 1, "random seed"),
		wirePrec:  fs.String("wire-precision", "fp32", "on-wire embedding row encoding in multi-process mode: fp32, fp16 or int8"),
		quantPush: fs.Bool("quantize-push", false, "also encode push deltas at -wire-precision instead of fp32 (multi-process mode)"),
		pullPipe:  fs.Int("pull-pipeline", 1, "concurrent block RPCs per shard during the pull stage (multi-process mode)"),
	}
}

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "serve":
		err = runServe(args[1:])
	case len(args) > 0 && args[0] == "driver":
		err = runDriver(args[1:])
	case len(args) > 0 && args[0] == "loadgen":
		err = runLoadgen(args[1:])
	case len(args) > 0 && !strings.HasPrefix(args[0], "-"):
		// A bare word that is not a known subcommand is almost certainly a
		// typo for one; running a full default training instead would be a
		// silent surprise.
		err = fmt.Errorf("unknown subcommand %q (want serve, driver, loadgen, or train flags)", args[0])
	default:
		err = runTrain(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hps:", err)
		os.Exit(1)
	}
}

// runTrain is the in-process mode (the default, flag-compatible with the
// original command).
func runTrain(args []string) error {
	fs := newTrainFlags("hps")
	nodes := fs.fs.Int("nodes", 2, "number of GPU nodes")
	baseline := fs.fs.Bool("baseline", false, "also run the MPI-cluster baseline and report the modelled speedup")
	if err := fs.fs.Parse(args); err != nil {
		return err
	}
	if rest := fs.fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected argument %q", rest[0])
	}
	return run(*fs.modelName, *fs.scale, *nodes, *fs.gpus, *fs.batches, *fs.batchSize,
		*fs.inFlight, *fs.cacheFrac, *fs.evalN, *fs.seed, *baseline)
}

func resolveSpec(name string, scale int64) (model.Spec, error) {
	if name == "tiny" {
		return model.TinySpec(), nil
	}
	spec, ok := model.Get(name)
	if !ok {
		return model.Spec{}, fmt.Errorf("unknown model %q (want A-E or tiny)", name)
	}
	return spec.Scaled(scale), nil
}

func run(modelName string, scale int64, nodes, gpus, batches, batchSize, inFlight int, cacheFrac float64, evalN int, seed int64, baseline bool) error {
	spec, err := resolveSpec(modelName, scale)
	if err != nil {
		return err
	}
	topo := cluster.Topology{Nodes: nodes, GPUsPerNode: gpus}
	if err := topo.Validate(); err != nil {
		return err
	}
	data := dataset.ForModel(spec.SparseParams, spec.NonZerosPerExample)

	// Size each node's MEM-PS cache relative to its parameter shard so the
	// memory hierarchy actually works: the hot set stays resident, the cold
	// tail lives on the SSD-PS.
	shard := spec.SparseParams / int64(nodes)
	cacheEntries := int(float64(shard) * cacheFrac)
	if cacheEntries < 128 {
		cacheEntries = 128
	}
	// Let compaction trigger once stale copies exceed the live model size.
	liveBytes := shard * int64(8+embedding.EncodedSize(spec.EmbeddingDim))

	cfg := trainer.Config{
		Spec:              spec,
		Data:              data,
		Topology:          topo,
		BatchSize:         batchSize,
		Batches:           batches,
		MaxInFlight:       inFlight,
		Profile:           hw.DefaultGPUNode(),
		LRUEntries:        cacheEntries / 2,
		LFUEntries:        cacheEntries - cacheEntries/2,
		SSDThresholdBytes: 2 * liveBytes,
		Seed:              seed,
	}
	fmt.Printf("training model %s: %d sparse params, dim %d, %d non-zeros/example, dense %v\n",
		spec.Name, spec.SparseParams, spec.EmbeddingDim, spec.NonZerosPerExample, spec.HiddenLayers)
	fmt.Printf("topology: %d node(s) x %d GPU(s), %d batches x %d examples/node, pipeline depth %d\n\n",
		nodes, gpus, batches, batchSize, inFlight)

	tr, err := trainer.New(cfg)
	if err != nil {
		return err
	}
	defer tr.Close()

	wallStart := time.Now()
	if err := tr.Run(context.Background()); err != nil {
		return err
	}
	wall := time.Since(wallStart)

	report := tr.Report()
	fmt.Print(report.String())
	fmt.Printf("(simulation wall time %v)\n", wall.Round(time.Millisecond))

	if evalN > 0 {
		auc, err := tr.Evaluate(dataset.NewGenerator(data, seed+424243), evalN)
		if err != nil {
			return err
		}
		fmt.Printf("\nAUC over %d held-out examples: %.4f\n", evalN, auc)
	}

	if baseline {
		if err := runBaseline(spec, data, report.Throughput.ExamplesPerSecond(), nodes, batches, batchSize, seed); err != nil {
			return err
		}
	}
	return nil
}

// runBaseline trains the MPI-cluster baseline on the same workload and
// prints the modelled speedup (the Table 4 comparison).
func runBaseline(spec model.Spec, data dataset.Config, hpsRate float64, gpuNodes, batches, batchSize int, seed int64) error {
	mpiNodes := spec.MPINodes
	if mpiNodes <= 0 {
		mpiNodes = 10
	}
	c, err := mpips.New(mpips.Config{Nodes: mpiNodes, Spec: spec, Seed: seed})
	if err != nil {
		return err
	}
	gen := dataset.NewGenerator(data, seed)
	for i := 0; i < batches; i++ {
		if err := c.TrainBatch(gen.NextBatch(batchSize)); err != nil {
			return err
		}
	}
	mpiRate := c.Throughput().ExamplesPerSecond()
	fmt.Printf("\n-- MPI baseline (%d CPU nodes) --\n", mpiNodes)
	bd := c.Breakdown()
	n := time.Duration(batches)
	fmt.Printf("per-node batch time %v (read %v, pull/push %v, compute %v)\n",
		c.PerNodeBatchTime().Round(time.Microsecond), (bd.ReadExamples / n).Round(time.Microsecond),
		(bd.PullPush / n).Round(time.Microsecond), (bd.Compute / n).Round(time.Microsecond))
	fmt.Printf("cluster throughput %.0f examples/s\n", mpiRate)
	if mpiRate > 0 {
		speedup := hpsRate / mpiRate
		fmt.Printf("hierarchical vs MPI speedup: %.2fx raw", speedup)
		fmt.Printf(", %.2fx cost-normalized (1 GPU node ~ %.0f MPI nodes)\n",
			speedup/float64(gpuNodes)/hw.CostGPUNodesPerMPINode*float64(mpiNodes),
			hw.CostGPUNodesPerMPINode)
		if spec.PaperSpeedup > 0 {
			fmt.Printf("(paper reports %.1fx for model %s at production scale)\n", spec.PaperSpeedup, spec.Name)
		}
	}
	return nil
}
