#!/usr/bin/env bash
# crash-restart-smoke.sh [hps-binary] — end-to-end crash drill for the
# durability path: run the multi-process driver, kill -9 one shard
# mid-epoch, and assert that the driver restarts it with -restore, that
# the restarted shard recovers its SSD-PS parameters and replays its
# push-dedup seq log, and that the run still finishes with a sane AUC.
#
# This is the CI twin of TestCrashRestartRecoversDurableState: the test
# drills the recovery logic in-process; this script drills the actual
# process supervision (fork/exec, SIGKILL, stderr passthrough, address
# repointing) that a unit test cannot reach.
set -euo pipefail

HPS="${1:-/tmp/hps}"
STATE="$(mktemp -d)"
OUT="$STATE/driver.out"
trap 'rm -rf "$STATE"' EXIT

# -batch-pause stretches the run so the kill lands mid-epoch with work in
# flight; -checkpoint-interval exercises the periodic manifest path while
# we are at it.
"$HPS" driver -model tiny -shards 2 -gpus 2 -batches 40 -batch-size 64 \
  -eval 800 -seed 4 -state-dir "$STATE/run" -checkpoint-interval 5 \
  -batch-pause 100ms >"$OUT" 2>&1 &
DRIVER=$!

# Wait for shard 1 to come up, then kill -9 it: no flush, no handoff —
# only its state directory survives.
VICTIM=""
for _ in $(seq 1 100); do
  VICTIM="$(grep -oP 'shard 1 up: pid \K[0-9]+' "$OUT" 2>/dev/null || true)"
  [ -n "$VICTIM" ] && break
  sleep 0.1
done
if [ -z "$VICTIM" ]; then
  echo "shard 1 never came up:" >&2
  cat "$OUT" >&2
  exit 1
fi
sleep 1 # let it train long enough to have dumped parameters and seq records
kill -9 "$VICTIM"
echo "killed shard 1 (pid $VICTIM)"

# The driver is our direct child, so wait is enough; a hung run is caught
# by the CI step timeout.
if ! wait "$DRIVER"; then
  echo "driver did not survive the shard crash:" >&2
  cat "$OUT" >&2
  exit 1
fi

check() {
  if ! grep -qE "$1" "$OUT"; then
    echo "missing from driver output: $1" >&2
    cat "$OUT" >&2
    exit 1
  fi
}
check 'shard 1 died .*; restarting with -restore'
check 'shard 1 restarted: pid [0-9]+'
check 'hps-shard 1: restored [1-9][0-9]* parameters'
check 'hps-shard 1: replayed [1-9][0-9]* applied-push records'
check 'AUC over 800'
test -f "$STATE/run/checkpoint.json" || {
  echo "no checkpoint manifest written to $STATE/run" >&2
  exit 1
}

echo "crash-restart smoke ok:"
grep -E 'shard 1 (died|restarted)|hps-shard 1: (restored|replayed)|AUC over' "$OUT"
