#!/usr/bin/env bash
# reshard-smoke.sh [hps-binary] — end-to-end resharding drill for the
# replicated ring: run the multi-process driver with R=2 and concurrent
# serving load, join a fresh shard mid-run (-add-shard), then kill -9 a
# primary and assert that the driver promotes its backups instead of
# restoring it, that the run finishes on the reshaped ring [0 2 3] with a
# sane AUC, and that the loadgen kept serving (nonzero qps) across both
# membership changes.
#
# This is the CI twin of TestKillPrimaryMidEpochPromotesBackup: the test
# drills promotion and re-replication in-process; this script drills the
# real thing — process supervision, the Leave/Join membership broadcasts
# over TCP, and serving traffic riding through the reshard.
set -euo pipefail

HPS="${1:-/tmp/hps}"
STATE="$(mktemp -d)"
OUT="$STATE/driver.out"
trap 'rm -rf "$STATE"' EXIT

# -batch-pause stretches the run so the join (2s in) and the kill (after
# the join) both land with training and serving traffic in flight.
"$HPS" driver -model tiny -shards 3 -gpus 2 -batches 120 -batch-size 64 \
  -eval 800 -seed 4 -state-dir "$STATE/run" -batch-pause 50ms \
  -replicas 2 -add-shard 2s \
  -loadgen -loadgen-duration 6s >"$OUT" 2>&1 &
DRIVER=$!

# Wait for shard 1 (a primary we will murder) to come up.
VICTIM=""
for _ in $(seq 1 100); do
  VICTIM="$(grep -oP 'shard 1 up: pid \K[0-9]+' "$OUT" 2>/dev/null || true)"
  [ -n "$VICTIM" ] && break
  sleep 0.1
done
if [ -z "$VICTIM" ]; then
  echo "shard 1 never came up:" >&2
  cat "$OUT" >&2
  exit 1
fi

# Let the join happen first, so the kill exercises promotion on the grown
# ring — two membership epochs in one run.
JOINED=""
for _ in $(seq 1 150); do
  JOINED="$(grep -o 'shard 3 joined: pid [0-9]*' "$OUT" 2>/dev/null || true)"
  [ -n "$JOINED" ] && break
  sleep 0.1
done
if [ -z "$JOINED" ]; then
  echo "shard 3 never joined the ring:" >&2
  cat "$OUT" >&2
  exit 1
fi
sleep 0.5 # give the join's re-replication a head start, then strike
kill -9 "$VICTIM"
echo "killed shard 1 (pid $VICTIM) after the join"

# Promotion (not restore) must keep the run alive: the driver is our
# direct child, so wait is enough; a hung run is caught by the CI step
# timeout.
if ! wait "$DRIVER"; then
  echo "driver did not survive the primary kill:" >&2
  cat "$OUT" >&2
  exit 1
fi

check() {
  if ! grep -qE "$1" "$OUT"; then
    echo "missing from driver output: $1" >&2
    cat "$OUT" >&2
    exit 1
  fi
}
check 'shard 3 joined: pid [0-9]+ at .* \(ring epoch [0-9]+\)'
check 'shard 1 died .*; promoting its backups instead of restoring'
check 'shard 1 lost permanently; its backups were promoted'
check 'ring: epoch [0-9]+, members \[0 2 3\], replicas 2'
# replication actually moved bytes: every surviving shard forwarded
# applied deltas to backups and/or streamed transfer blocks
check 'hps-shard [0-9]+: replicated [1-9][0-9]* blocks'
# serving stayed up through both membership changes
check 'qps +[1-9][0-9.]* req/s'
check 'AUC over 800'

echo "reshard smoke ok:"
grep -E 'shard 3 joined|shard 1 (died|lost)|ring: epoch|qps|AUC over' "$OUT"
