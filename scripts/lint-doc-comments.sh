#!/usr/bin/env bash
# lint-doc-comments.sh [pkg dir ...] — fail if an exported top-level
# identifier in the given package directories lacks a doc comment.
#
# go vet does not enforce doc comments, and the usual linters (revive,
# golint) are external modules this repo does not vendor, so this is the
# dependency-free subset: a declaration starting at column 0 with an
# exported name (func/type/var/const, including methods) must be preceded
# by a // comment line. Grouped declarations (`var (` blocks) and test
# files are out of scope.
set -euo pipefail
cd "$(dirname "$0")/.."

pkgs=("$@")
if [ ${#pkgs[@]} -eq 0 ]; then
  pkgs=(internal/serving internal/loadgen)
fi

fail=0
for pkg in "${pkgs[@]}"; do
  for f in "$pkg"/*.go; do
    case "$f" in
    *_test.go) continue ;;
    esac
    awk -v file="$f" '
      /^(func|type|var|const) [A-Z]/ || /^func \([^)]*\) [A-Z]/ {
        if (prev !~ /^\/\//) {
          printf "%s:%d: exported declaration has no doc comment: %s\n", file, NR, substr($0, 1, 60)
          bad = 1
        }
      }
      { prev = $0 }
      END { exit bad }
    ' "$f" || fail=1
  done
done

if [ "$fail" -ne 0 ]; then
  echo "doc-comment lint failed" >&2
  exit 1
fi
echo "doc-comment lint ok: ${pkgs[*]}"
