module hps

go 1.24
